package critpath

import (
	"math"
	"testing"

	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
)

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want)) {
		t.Fatalf("%s = %v, want %v", name, got, want)
	}
}

func TestParseScenario(t *testing.T) {
	sc, err := ParseScenario("nand_program:0.5,zone_reset:0")
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "program", sc.Factor(telemetry.PhaseNANDProgram), 0.5)
	approx(t, "reset", sc.Factor(telemetry.PhaseZoneReset), 0)
	approx(t, "unscaled", sc.Factor(telemetry.PhaseNANDRead), 1)
	for _, bad := range []string{"", "bogus:1", "nand_read", "nand_read:-1", "nand_read:x"} {
		if _, err := ParseScenario(bad); err == nil {
			t.Fatalf("ParseScenario(%q) accepted", bad)
		}
	}
}

// TestReplayDirect: service phases scale by their own factor.
func TestReplayDirect(t *testing.T) {
	rec := PathRec{Total: 760 * us}
	rec.Path[telemetry.PhaseNANDProgram] = 700 * us
	rec.Path[telemetry.PhaseNANDRead] = 60 * us
	got := Replay(&rec, MustScenario("nand_program:0.5"), PredictOpts{})
	approx(t, "replay", got, float64(410*us))
}

// TestReplayWaitBind: a wait bound to a program scales with the program; the
// unbound remainder scales only by its own (unscaled) factor.
func TestReplayWaitBind(t *testing.T) {
	var rec PathRec
	rec.Path[telemetry.PhaseLUNWait] = 100 * us
	rec.WaitBy[WaitLUN][BindProgram] = 80 * us // 20us unbound
	rec.Path[telemetry.PhaseNANDProgram] = 700 * us
	rec.Total = 800 * us
	got := Replay(&rec, MustScenario("nand_program:0.5"), PredictOpts{})
	// 80*0.5 + 20 + 700*0.5 = 410us
	approx(t, "replay", got, float64(410*us))
	// Scaling the wait phase itself compounds with the bind.
	got = Replay(&rec, MustScenario("lun_wait:0"), PredictOpts{})
	approx(t, "wait scaled", got, float64(700*us))
}

// TestReplayComposite: a composite scales by the blend of its recorded
// composition.
func TestReplayComposite(t *testing.T) {
	var rec PathRec
	rec.Path[telemetry.PhaseGCStall] = 1000 * us
	rec.Comp[CompGCStall][telemetry.PhaseNANDProgram] = 600 * us
	rec.Comp[CompGCStall][telemetry.PhaseNANDRead] = 200 * us
	rec.Total = 1000 * us
	got := Replay(&rec, MustScenario("nand_program:0.5"), PredictOpts{})
	// blend = (600*0.5 + 200*1)/800 = 0.625
	approx(t, "replay", got, float64(625*us))
	// An empty-composition composite scales only by its own factor.
	var bare PathRec
	bare.Path[telemetry.PhaseGCStall] = 1000 * us
	bare.Total = 1000 * us
	approx(t, "bare", Replay(&bare, MustScenario("nand_program:0.5"), PredictOpts{}), float64(1000*us))
	approx(t, "own factor", Replay(&bare, MustScenario("gc_stall:0"), PredictOpts{}), 0)
}

// TestReplayCompositeWait: waits inside a composite track the composite's
// own service blend.
func TestReplayCompositeWait(t *testing.T) {
	var rec PathRec
	rec.Path[telemetry.PhaseGCStall] = 1000 * us
	rec.Comp[CompGCStall][telemetry.PhaseNANDProgram] = 500 * us
	rec.Comp[CompGCStall][telemetry.PhaseLUNWait] = 500 * us
	rec.Total = 1000 * us
	got := Replay(&rec, MustScenario("nand_program:0.5"), PredictOpts{})
	// sblend = 0.5; comp blend = (500*0.5 + 500*(1*0.5))/1000 = 0.5
	approx(t, "replay", got, float64(500*us))
}

// TestReplayErasesAreResets: on zoned stacks a zone_reset scaling reaches
// erase-bound waits and erase constituents.
func TestReplayErasesAreResets(t *testing.T) {
	var rec PathRec
	rec.Path[telemetry.PhaseLUNWait] = 100 * us
	rec.WaitBy[WaitLUN][BindErase] = 100 * us
	rec.Path[telemetry.PhaseZoneReset] = 4200 * us
	rec.Comp[CompZoneReset][telemetry.PhaseNANDErase] = 4200 * us
	rec.Total = 4300 * us
	sc := MustScenario("zone_reset:0")
	got := Replay(&rec, sc, PredictOpts{ErasesAreResets: true})
	approx(t, "zoned", got, 0)
	// On a conventional stack the same scenario leaves erase-bound waits
	// alone (the erase is GC, not a reset).
	got = Replay(&rec, sc, PredictOpts{})
	approx(t, "conventional", got, float64(100*us))
}

// TestPredictSummaries checks the distribution summary: exact nearest-rank
// percentiles, per-op grouping, per-tenant entries, ratio guards.
func TestPredictSummaries(t *testing.T) {
	snap := Snapshot{}
	for i := 0; i < 100; i++ {
		var rec PathRec
		rec.Op = telemetry.OpRead
		rec.Tenant = telemetry.TenantID(i % 2)
		rec.Path[telemetry.PhaseNANDRead] = sim.Time(i+1) * us
		rec.Total = sim.Time(i+1) * us
		snap.Paths = append(snap.Paths, rec)
		snap.Tenants[rec.Tenant].Count[telemetry.OpRead]++
	}
	preds := snap.Predict(MustScenario("nand_read:0.5"), PredictOpts{PerTenant: true})
	if len(preds) != 3 {
		t.Fatalf("predictions: %d, want 3 (all + 2 tenants)", len(preds))
	}
	all := preds[0]
	if all.Tenant != -1 || all.Count != 100 {
		t.Fatalf("all-tenants entry: %+v", all)
	}
	approx(t, "base mean", all.BaseMean, 50.5)
	approx(t, "base p99", all.BaseP99, 99)
	approx(t, "pred mean", all.Mean, 25.25)
	approx(t, "mean ratio", all.MeanRatio, 0.5)
	approx(t, "p99 ratio", all.P99Ratio, 0.5)
}
