package telemetry

import "blockhead/internal/sim"

// Track processes: the Chrome trace-event exporter renders one process per
// hardware layer, with one thread (track) per unit inside it. A LUN's track
// shows its busy intervals; a zone's track shows its state transitions and
// writes; the FTL/host tracks show GC phases.
const (
	ProcFlashChan int32 = 1 // tid = channel index
	ProcFlashLUN  int32 = 2 // tid = LUN index (channel x die x plane)
	ProcFTL       int32 = 3 // conventional FTL control plane; tid 0 = GC
	ProcHostFTL   int32 = 4 // host-side translation layer; tid 0 = reclaim
	ProcZone      int32 = 5 // tid = zone index
)

// Event is one recorded trace event. Dur < 0 marks an instant event.
type Event struct {
	Name    string
	Cat     string
	Start   sim.Time
	Dur     sim.Time
	PID     int32
	TID     int32
	ArgName string // optional single numeric argument
	Arg     int64
}

// Instant reports whether the event is an instant (zero-duration marker).
func (e Event) Instant() bool { return e.Dur < 0 }

// DefaultTraceEvents is the default ring capacity (~64k events).
const DefaultTraceEvents = 1 << 16

// Tracer records structured events into a bounded ring buffer. When the
// ring fills, the oldest events are overwritten and counted as dropped, so
// a trace always holds the most recent window of a run. The nil Tracer is
// a valid no-op and every record method is allocation-free.
//
//simlint:shared bounded span ring ordered by virtual time: shards record locally and the rings interleave-merge by timestamp at barriers
type Tracer struct {
	ring    []Event
	next    int
	total   uint64
	procs   map[int32]string
	tracks  map[int64]string // pid<<32|tid -> name
	touched map[int64]bool   // tracks that actually carry events
}

// NewTracer returns a tracer holding at most capacity events (rounded up to
// 1; capacity <= 0 selects DefaultTraceEvents).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceEvents
	}
	return &Tracer{
		ring:    make([]Event, 0, capacity),
		procs:   make(map[int32]string),
		tracks:  make(map[int64]string),
		touched: make(map[int64]bool),
	}
}

func trackKey(pid, tid int32) int64 { return int64(pid)<<32 | int64(uint32(tid)) }

func (t *Tracer) record(e Event) {
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
	} else {
		t.ring[t.next] = e
		t.next++
		if t.next == len(t.ring) {
			t.next = 0
		}
	}
	t.total++
}

// Span records a duration event [start, end) on the given track. No-op on a
// nil receiver; allocation-free otherwise.
func (t *Tracer) Span(pid, tid int32, cat, name string, start, end sim.Time) {
	if t == nil {
		return
	}
	if end < start {
		end = start
	}
	t.record(Event{Name: name, Cat: cat, Start: start, Dur: end - start, PID: pid, TID: tid})
}

// SpanArg records a duration event with one named numeric argument.
func (t *Tracer) SpanArg(pid, tid int32, cat, name string, start, end sim.Time, argName string, arg int64) {
	if t == nil {
		return
	}
	if end < start {
		end = start
	}
	t.record(Event{Name: name, Cat: cat, Start: start, Dur: end - start,
		PID: pid, TID: tid, ArgName: argName, Arg: arg})
}

// Instant records a zero-duration marker event on the given track.
func (t *Tracer) Instant(pid, tid int32, cat, name string, at sim.Time) {
	if t == nil {
		return
	}
	t.record(Event{Name: name, Cat: cat, Start: at, Dur: -1, PID: pid, TID: tid})
}

// InstantArg records a marker event with one named numeric argument.
func (t *Tracer) InstantArg(pid, tid int32, cat, name string, at sim.Time, argName string, arg int64) {
	if t == nil {
		return
	}
	t.record(Event{Name: name, Cat: cat, Start: at, Dur: -1,
		PID: pid, TID: tid, ArgName: argName, Arg: arg})
}

// NameProcess labels a process (layer) for the exporter. Safe to call at
// probe-attach time; no-op on a nil receiver.
func (t *Tracer) NameProcess(pid int32, name string) {
	if t == nil {
		return
	}
	t.procs[pid] = name
}

// NameTrack labels one track (thread) inside a process.
func (t *Tracer) NameTrack(pid, tid int32, name string) {
	if t == nil {
		return
	}
	t.tracks[trackKey(pid, tid)] = name
}

// Len reports how many events are currently retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.ring)
}

// Total reports how many events were ever recorded.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.total
}

// Dropped reports how many events were overwritten by ring wraparound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.total - uint64(len(t.ring))
}

// Events returns the retained events oldest-first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}
