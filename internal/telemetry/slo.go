package telemetry

import (
	"blockhead/internal/sim"
)

// SLO is one per-tenant objective over the window ring: a tail-latency
// bound (Pct-th percentile at most LatencyMax), a throughput floor
// (MinRate ops/sec), or both. A window violates the SLO if it misses
// either bound; the objective holds overall while the violating-window
// fraction stays within Budget (the error budget, so
// burn rate = violated fraction / Budget, and burn > 1 means FAIL).
type SLO struct {
	Tenant TenantID
	Op     OpKind
	// Pct is the latency percentile under test; 0 selects 99.
	Pct float64
	// LatencyMax bounds the Pct-th percentile latency; 0 disables the
	// latency objective.
	LatencyMax sim.Time
	// MinRate is the per-window throughput floor in ops per virtual
	// second; 0 disables the throughput objective.
	MinRate float64
	// Budget is the tolerated violating-window fraction; 0 selects 0.05.
	Budget float64
}

// SLOResult is one objective's verdict over the currently retained
// windows.
type SLOResult struct {
	SLO      SLO
	Windows  int     // windows evaluated
	Violated int     // windows that missed an objective
	BurnRate float64 // violated fraction / budget; > 1 means the SLO failed
	// WorstUs is the worst per-window Pct-th percentile seen (µs);
	// WorstRate is the lowest per-window rate seen (ops/s, 0 when no
	// throughput objective or no windows).
	WorstUs   float64
	WorstRate float64
	OK        bool
}

// SLOEngine evaluates objectives against a WindowSet. The nil *SLOEngine
// is a valid no-op on every method (telemetry off), matching the sink
// contract.
type SLOEngine struct {
	wins       *WindowSet
	objectives []SLO
}

// NewSLOEngine returns an engine reading from w.
func NewSLOEngine(w *WindowSet) *SLOEngine { return &SLOEngine{wins: w} }

// Add registers one objective. Zero Pct and Budget take their defaults.
func (e *SLOEngine) Add(o SLO) {
	if e == nil {
		return
	}
	if o.Pct <= 0 {
		o.Pct = 99
	}
	if o.Budget <= 0 {
		o.Budget = 0.05
	}
	o.Tenant = clampTenant(o.Tenant)
	e.objectives = append(e.objectives, o)
}

// Objectives reports how many objectives are registered.
func (e *SLOEngine) Objectives() int {
	if e == nil {
		return 0
	}
	return len(e.objectives)
}

// Evaluate renders a window-by-window verdict for every objective, in
// registration order. Only windows the tenant actually touched exist in
// the ring; a throughput objective therefore judges the tenant's active
// windows (a tenant that went fully idle parks its ring, it does not
// accrue empty violating windows).
func (e *SLOEngine) Evaluate() []SLOResult {
	if e == nil {
		return nil
	}
	out := make([]SLOResult, 0, len(e.objectives))
	for _, o := range e.objectives {
		r := SLOResult{SLO: o}
		wins := e.wins.Snapshot(o.Tenant)
		width := e.wins.Width()
		secs := 0.0
		if width > 0 {
			secs = float64(width) / float64(sim.Second)
		}
		worstRate := -1.0
		for _, win := range wins {
			op := win.Ops[o.Op]
			if op.Count == 0 && o.MinRate <= 0 {
				continue // no samples and no throughput bound: nothing to judge
			}
			r.Windows++
			bad := false
			if o.LatencyMax > 0 && op.Count > 0 {
				p := op.Hist.Percentile(o.Pct)
				if us := p.Micros(); us > r.WorstUs {
					r.WorstUs = us
				}
				if p > o.LatencyMax {
					bad = true
				}
			}
			if o.MinRate > 0 && secs > 0 {
				rate := float64(op.Count) / secs
				if worstRate < 0 || rate < worstRate {
					worstRate = rate
				}
				if rate < o.MinRate {
					bad = true
				}
			}
			if bad {
				r.Violated++
			}
		}
		if worstRate >= 0 {
			r.WorstRate = worstRate
		}
		if r.Windows > 0 {
			r.BurnRate = float64(r.Violated) / float64(r.Windows) / o.Budget
		}
		r.OK = r.BurnRate <= 1
		out = append(out, r)
	}
	return out
}

// SLODump is the JSON shape of one SLO verdict.
type SLODump struct {
	Tenant       int     `json:"tenant"`
	Op           string  `json:"op"`
	Pct          float64 `json:"pct"`
	LatencyMaxUs float64 `json:"latency_max_us,omitempty"`
	MinRate      float64 `json:"min_rate,omitempty"`
	Windows      int     `json:"windows"`
	Violated     int     `json:"violated"`
	BurnRate     float64 `json:"burn_rate"`
	WorstPctUs   float64 `json:"worst_pct_us"`
	WorstRate    float64 `json:"worst_rate"`
	OK           bool    `json:"ok"`
}

// Dump converts the verdict to its JSON shape.
func (r SLOResult) Dump() SLODump {
	return SLODump{
		Tenant:       int(r.SLO.Tenant),
		Op:           r.SLO.Op.String(),
		Pct:          r.SLO.Pct,
		LatencyMaxUs: r.SLO.LatencyMax.Micros(),
		MinRate:      r.SLO.MinRate,
		Windows:      r.Windows,
		Violated:     r.Violated,
		BurnRate:     r.BurnRate,
		WorstPctUs:   r.WorstUs,
		WorstRate:    r.WorstRate,
		OK:           r.OK,
	}
}
