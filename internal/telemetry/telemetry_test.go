package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"blockhead/internal/sim"
)

func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	c.Add(5)
	c.Inc()
	if c.Value() != 0 || c.Name() != "" {
		t.Error("nil counter not zero")
	}

	var h *Hist
	h.Observe(sim.Millisecond)
	if snap := h.Snapshot(); snap.Count() != 0 {
		t.Error("nil hist recorded")
	}

	var r *Registry
	if r.Counter("x") != nil || r.Histogram("x") != nil {
		t.Error("nil registry returned live handles")
	}
	r.Gauge("g", func(sim.Time) float64 { return 1 })
	if _, ok := r.GaugeValue("g", 0); ok {
		t.Error("nil registry has a gauge")
	}
	r.SampleEvery(sim.Millisecond)
	r.Tick(sim.Second)
	if r.SeriesSnapshot() != nil {
		t.Error("nil registry has series")
	}

	var tr *Tracer
	tr.Span(1, 0, "c", "s", 0, 10)
	tr.SpanArg(1, 0, "c", "s", 0, 10, "a", 1)
	tr.Instant(1, 0, "c", "i", 5)
	tr.InstantArg(1, 0, "c", "i", 5, "a", 1)
	tr.NameProcess(1, "p")
	tr.NameTrack(1, 0, "t")
	if tr.Len() != 0 || tr.Total() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Error("nil tracer recorded")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "traceEvents") {
		t.Error("nil tracer export is not a valid trace")
	}

	var p *Probe
	if p.Registry() != nil || p.Tracer() != nil {
		t.Error("nil probe returned live components")
	}
	p.Tick(0)
}

func TestRegistryHandlesAreStable(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a/b")
	c1.Add(3)
	if c2 := r.Counter("a/b"); c2 != c1 || c2.Value() != 3 {
		t.Error("counter handle not stable across lookups")
	}
	if c1.Name() != "a/b" {
		t.Errorf("Name = %q", c1.Name())
	}
	h1 := r.Histogram("h")
	h1.Observe(2 * sim.Microsecond)
	h2 := r.Histogram("h")
	if snap := h2.Snapshot(); h2 != h1 || snap.Count() != 1 {
		t.Error("histogram handle not stable")
	}
}

func TestGaugeRegisterAndReplace(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", func(sim.Time) float64 { return 1 })
	if v, ok := r.GaugeValue("g", 0); !ok || v != 1 {
		t.Fatalf("gauge = %v, %v", v, ok)
	}
	// Re-registering under the same name replaces the function (devices are
	// rebuilt between experiments but share one probe).
	r.Gauge("g", func(at sim.Time) float64 { return float64(at) })
	if v, _ := r.GaugeValue("g", 7); v != 7 {
		t.Errorf("replaced gauge = %v", v)
	}
	if _, ok := r.GaugeValue("missing", 0); ok {
		t.Error("unknown gauge reported ok")
	}
}

func TestSamplerCollectsOnGrid(t *testing.T) {
	r := NewRegistry()
	r.Gauge("v", func(at sim.Time) float64 { return at.Millis() })
	r.SampleEvery(sim.Millisecond)
	for at := sim.Time(0); at <= 10*sim.Millisecond; at += 100 * sim.Microsecond {
		r.Tick(at)
	}
	ss := r.SeriesSnapshot()
	if len(ss) != 1 {
		t.Fatalf("series = %d", len(ss))
	}
	pts := ss[0].Points
	if len(pts) != 11 { // t=0ms..10ms inclusive
		t.Fatalf("points = %d, want 11", len(pts))
	}
	for i, p := range pts {
		if p.At != sim.Time(i)*sim.Millisecond || p.V != float64(i) {
			t.Fatalf("point %d = %+v", i, p)
		}
	}
}

func TestSamplerSkipsIdleGaps(t *testing.T) {
	r := NewRegistry()
	r.Gauge("v", func(sim.Time) float64 { return 1 })
	r.SampleEvery(sim.Millisecond)
	r.Tick(0)
	// A long idle gap must produce one sample at the far end, not a burst of
	// back-dated points.
	r.Tick(1 * sim.Second)
	r.Tick(1*sim.Second + sim.Millisecond)
	pts := r.SeriesSnapshot()[0].Points
	if len(pts) != 3 {
		t.Fatalf("points = %d, want 3 (0, 1s, 1.001s): %+v", len(pts), pts)
	}
}

func TestSamplerSurvivesTimeRegression(t *testing.T) {
	// Experiments restart virtual time at 0; a probe shared across two runs
	// must keep sampling on the second timeline.
	r := NewRegistry()
	r.Gauge("v", func(sim.Time) float64 { return 1 })
	r.SampleEvery(sim.Millisecond)
	for at := sim.Time(0); at <= 5*sim.Millisecond; at += sim.Millisecond {
		r.Tick(at)
	}
	before := len(r.SeriesSnapshot()[0].Points)
	// Second experiment: clock restarts.
	for at := sim.Time(0); at <= 5*sim.Millisecond; at += sim.Millisecond {
		r.Tick(at)
	}
	after := len(r.SeriesSnapshot()[0].Points)
	if after <= before {
		t.Fatalf("no samples after time regression: %d -> %d", before, after)
	}
}

func TestSamplerDecimates(t *testing.T) {
	r := NewRegistry()
	r.Gauge("v", func(at sim.Time) float64 { return float64(at) })
	r.SampleEvery(sim.Microsecond)
	n := defaultMaxPoints * 4
	for i := 0; i <= n; i++ {
		r.Tick(sim.Time(i) * sim.Microsecond)
	}
	pts := r.SeriesSnapshot()[0].Points
	if len(pts) > defaultMaxPoints {
		t.Fatalf("series grew past the cap: %d > %d", len(pts), defaultMaxPoints)
	}
	if r.SampleInterval() <= sim.Microsecond {
		t.Error("interval did not grow with decimation")
	}
	// Still covers the whole run, in order.
	for i := 1; i < len(pts); i++ {
		if pts[i].At <= pts[i-1].At {
			t.Fatalf("series not monotone at %d", i)
		}
	}
	if last := pts[len(pts)-1].At; last < sim.Time(n/2)*sim.Microsecond {
		t.Errorf("decimated series lost the tail: last point at %v", last)
	}
}

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Span(1, 0, "c", "s", sim.Time(i), sim.Time(i+1))
	}
	if tr.Len() != 4 || tr.Total() != 10 || tr.Dropped() != 6 {
		t.Fatalf("len=%d total=%d dropped=%d", tr.Len(), tr.Total(), tr.Dropped())
	}
	ev := tr.Events()
	// Oldest-first: the surviving window is spans 6..9.
	for i, e := range ev {
		if e.Start != sim.Time(6+i) {
			t.Fatalf("event %d starts at %v, want %v", i, e.Start, 6+i)
		}
	}
}

func TestTracerEventShapes(t *testing.T) {
	tr := NewTracer(8)
	tr.Span(2, 3, "flash", "read", 100, 40100)
	tr.SpanArg(2, 3, "flash", "program", 200, 900, "block", 17)
	tr.Instant(5, 1, "zone", "->open", 50)
	tr.Span(1, 0, "flash", "clamped", 30, 10) // end < start clamps to zero-dur
	ev := tr.Events()
	if ev[0].Instant() || ev[0].Dur != 40000 {
		t.Errorf("span: %+v", ev[0])
	}
	if ev[1].ArgName != "block" || ev[1].Arg != 17 {
		t.Errorf("span arg: %+v", ev[1])
	}
	if !ev[2].Instant() {
		t.Errorf("instant: %+v", ev[2])
	}
	if ev[3].Dur != 0 {
		t.Errorf("clamped span: %+v", ev[3])
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer(16)
	tr.NameProcess(ProcFlashLUN, "flash LUNs (dies)")
	tr.NameTrack(ProcFlashLUN, 2, "lun 2")
	tr.Span(ProcFlashLUN, 2, "flash", "read", sim.Microsecond, 3*sim.Microsecond)
	tr.InstantArg(ProcZone, 7, "zone", "->full", 5*sim.Microsecond, "zone", 7)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var sawProcMeta, sawTrackMeta, sawSpan, sawInstant bool
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "M":
			if e["name"] == "process_name" {
				sawProcMeta = true
			}
			if e["name"] == "thread_name" {
				sawTrackMeta = true
			}
		case "X":
			sawSpan = true
			if e["ts"].(float64) != 1 || e["dur"].(float64) != 2 {
				t.Errorf("span ts/dur wrong: %v", e)
			}
		case "i":
			sawInstant = true
			if e["s"] != "t" {
				t.Errorf("instant missing scope: %v", e)
			}
			args := e["args"].(map[string]interface{})
			if args["zone"].(float64) != 7 {
				t.Errorf("instant args wrong: %v", e)
			}
		}
	}
	if !sawProcMeta || !sawTrackMeta || !sawSpan || !sawInstant {
		t.Errorf("export missing sections: proc=%v track=%v span=%v instant=%v",
			sawProcMeta, sawTrackMeta, sawSpan, sawInstant)
	}
}

func TestWriteText(t *testing.T) {
	tr := NewTracer(2)
	tr.NameProcess(1, "flash")
	tr.NameTrack(1, 0, "chan 0")
	for i := 0; i < 3; i++ { // one more than capacity -> a dropped note
		tr.SpanArg(1, 0, "c", "xfer", sim.Time(i), sim.Time(i+1), "page", int64(i))
	}
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"flash/chan 0", "xfer", "page=2", "1 older events dropped"} {
		if !strings.Contains(out, want) {
			t.Errorf("text dump missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("layer/ops").Add(42)
	r.Histogram("layer/lat").Observe(8 * sim.Microsecond)
	r.Gauge("layer/level", func(at sim.Time) float64 { return 2.5 })
	r.SampleEvery(sim.Millisecond)
	r.Tick(0)
	r.Tick(sim.Millisecond)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf, sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	var d MetricsDump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if d.Counters["layer/ops"] != 42 {
		t.Errorf("counter = %d", d.Counters["layer/ops"])
	}
	if d.Gauges["layer/level"] != 2.5 {
		t.Errorf("gauge = %v", d.Gauges["layer/level"])
	}
	if h := d.Histograms["layer/lat"]; h.Count != 1 || h.MaxUs != 8 {
		t.Errorf("hist = %+v", h)
	}
	if len(d.Series) != 1 || len(d.Series[0].Samples) != 2 {
		t.Fatalf("series = %+v", d.Series)
	}
}
