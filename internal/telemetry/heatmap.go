package telemetry

import "blockhead/internal/sim"

// maxHeatCells bounds the per-block arrays in a heatmap dump so the JSON
// payload stays small for arbitrarily large simulated devices: above this
// many blocks, adjacent blocks are merged into cells.
const maxHeatCells = 1024

// HeatFunc produces one device's spatial snapshot at virtual time at.
// It runs on the simulation thread (dump paths may allocate).
type HeatFunc func(at sim.Time) DeviceHeat

// HeatSet is a registry of heatmap sources. Device models register a
// HeatFunc under a stable name in SetProbe; Dump snapshots all of them.
// Registering an existing name replaces the function (keeping its position),
// so successive experiment stacks sharing one probe shadow each other
// instead of accumulating dead devices. The nil *HeatSet no-ops.
type HeatSet struct {
	names []string
	fns   map[string]HeatFunc
}

// NewHeatSet returns an empty heatmap-source registry.
func NewHeatSet() *HeatSet {
	return &HeatSet{fns: make(map[string]HeatFunc)}
}

// Register adds (or replaces) the source for name. No-op on a nil set.
func (h *HeatSet) Register(name string, fn HeatFunc) {
	if h == nil || fn == nil {
		return
	}
	if _, ok := h.fns[name]; !ok {
		h.names = append(h.names, name)
	}
	h.fns[name] = fn
}

// Dump snapshots every registered source, in registration order. Safe on a
// nil set (empty dump).
func (h *HeatSet) Dump(at sim.Time) HeatmapDump {
	if h == nil {
		return HeatmapDump{AtMillis: at.Millis(), Devices: []DeviceHeat{}}
	}
	d := HeatmapDump{AtMillis: at.Millis(), Devices: []DeviceHeat{}}
	for _, name := range h.names {
		dh := h.fns[name](at)
		dh.Name = name
		d.Devices = append(d.Devices, dh)
	}
	return d
}

// HeatmapDump is the JSON shape of a spatial snapshot (/heatmap.json).
type HeatmapDump struct {
	AtMillis float64      `json:"at_ms"`
	Devices  []DeviceHeat `json:"devices"`
}

// DeviceHeat is one device's spatial snapshot. Every section is optional:
// flash fills Wear/Channels/LUNs, zns and hostftl fill Zones, ftl fills
// Blocks (valid-page fractions).
type DeviceHeat struct {
	Name     string     `json:"name"`
	Wear     *WearHeat  `json:"wear,omitempty"`
	Channels []UnitOcc  `json:"channels,omitempty"`
	LUNs     []UnitOcc  `json:"luns,omitempty"`
	Zones    []ZoneHeat `json:"zones,omitempty"`
	Blocks   *GridHeat  `json:"blocks,omitempty"`
}

// WearHeat summarizes per-block erase wear: aggregate statistics, a bucketed
// histogram, and a downsampled per-cell grid (max erase count within each
// cell of CellBlocks adjacent blocks).
type WearHeat struct {
	Blocks     int          `json:"blocks"`
	BadBlocks  int          `json:"bad_blocks"`
	MaxErase   uint32       `json:"max_erase"`
	MeanErase  float64      `json:"mean_erase"`
	Spread     uint32       `json:"spread"`
	Skew       float64      `json:"skew"`
	Hist       []WearBucket `json:"hist"`
	Cells      []uint32     `json:"cells"`
	CellBlocks int          `json:"cell_blocks"`
}

// WearBucket is one erase-count histogram bucket: Blocks blocks have an
// erase count in [Lo, Hi].
type WearBucket struct {
	Lo     uint32 `json:"lo"`
	Hi     uint32 `json:"hi"`
	Blocks int    `json:"blocks"`
}

// UnitOcc is the busy-time occupancy of one hardware unit (channel or LUN)
// since the start of the run: BusyFrac = busy time / elapsed virtual time.
type UnitOcc struct {
	ID       int     `json:"id"`
	BusyFrac float64 `json:"busy_frac"`
}

// ZoneHeat is one zone's snapshot. Valid is the valid-page fraction of the
// written region when the registering layer tracks liveness (hostftl), and
// -1 when it does not (raw zns).
type ZoneHeat struct {
	Zone  int     `json:"zone"`
	State string  `json:"state"`
	WP    int64   `json:"wp"`
	Cap   int64   `json:"cap"`
	Valid float64 `json:"valid"`
}

// GridHeat is a downsampled per-block scalar grid (e.g. valid-page
// fraction), mean within each cell of CellBlocks adjacent blocks.
type GridHeat struct {
	Cells      []float64 `json:"cells"`
	CellBlocks int       `json:"cell_blocks"`
}

// HeatCellsU32 downsamples one value per block to at most maxHeatCells
// cells, keeping the maximum within each cell (hot spots stay visible).
// Returns the cells and how many blocks each cell covers.
func HeatCellsU32(vals []uint32) ([]uint32, int) {
	stride := (len(vals) + maxHeatCells - 1) / maxHeatCells
	if stride < 1 {
		stride = 1
	}
	cells := make([]uint32, 0, (len(vals)+stride-1)/stride)
	for i := 0; i < len(vals); i += stride {
		max := vals[i]
		for _, v := range vals[i+1 : min(i+stride, len(vals))] {
			if v > max {
				max = v
			}
		}
		cells = append(cells, max)
	}
	return cells, stride
}

// HeatCellsFrac downsamples one fraction per block to at most maxHeatCells
// cells, averaging within each cell. Returns the cells and how many blocks
// each cell covers.
func HeatCellsFrac(vals []float64) ([]float64, int) {
	stride := (len(vals) + maxHeatCells - 1) / maxHeatCells
	if stride < 1 {
		stride = 1
	}
	cells := make([]float64, 0, (len(vals)+stride-1)/stride)
	for i := 0; i < len(vals); i += stride {
		end := min(i+stride, len(vals))
		sum := 0.0
		for _, v := range vals[i:end] {
			sum += v
		}
		cells = append(cells, sum/float64(end-i))
	}
	return cells, stride
}
