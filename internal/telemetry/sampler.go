package telemetry

import "blockhead/internal/sim"

// Point is one time-series sample.
type Point struct {
	At sim.Time
	V  float64
}

// Series is one gauge's sampled history.
type Series struct {
	Name   string
	Points []Point
}

// defaultMaxPoints bounds each series; when a run outgrows it the sampler
// halves the resolution (drops every other point, doubles the interval) so
// memory stays bounded on arbitrarily long runs while the curve keeps its
// overall shape.
const defaultMaxPoints = 4096

// SampleEvery arms the time-series sampler: every interval of virtual time,
// Tick snapshots every registered gauge. interval <= 0 disables sampling.
// No-op on a nil registry.
func (r *Registry) SampleEvery(interval sim.Time) {
	if r == nil {
		return
	}
	r.sampleEvery = interval
	r.nextSample = 0
}

// SampleInterval reports the current (possibly decimated) interval.
func (r *Registry) SampleInterval() sim.Time {
	if r == nil {
		return 0
	}
	return r.sampleEvery
}

// Tick advances the sampler to virtual time at, snapshotting the gauges if
// a sample is due. Device models call it from their operation paths (and
// the sim loop can drive it via Loop.OnEvent); the fast path is a nil check
// and one comparison, so it is safe on every I/O.
func (r *Registry) Tick(at sim.Time) {
	if r == nil || r.sampleEvery <= 0 {
		return
	}
	if at+r.sampleEvery < r.nextSample {
		// Virtual time went backwards: a new experiment attached to this
		// registry and restarted its clock. Re-arm on the new timeline so
		// its series still collect samples.
		r.nextSample = at
	}
	if at < r.nextSample {
		return
	}
	r.sample(at)
	// Re-arm on the sampling grid. After a long jump in virtual time (an
	// idle device), skip ahead rather than emitting a burst of stale points.
	r.nextSample += r.sampleEvery
	if r.nextSample <= at {
		r.nextSample = at + r.sampleEvery
	}
}

func (r *Registry) sample(at sim.Time) {
	if at == r.lastSample && r.lastSample > 0 {
		return // same instant; one point is enough
	}
	r.lastSample = at
	for _, g := range r.gauges {
		g.series = append(g.series, Point{At: at, V: g.fn(at)})
	}
	if len(r.gauges) > 0 && len(r.gauges[0].series) >= r.maxPoints {
		r.decimate()
	}
}

// decimate halves every series in lockstep and doubles the interval.
func (r *Registry) decimate() {
	for _, g := range r.gauges {
		kept := g.series[:0]
		for i := 0; i < len(g.series); i += 2 {
			kept = append(kept, g.series[i])
		}
		g.series = kept
	}
	r.sampleEvery *= 2
}

// SeriesSnapshot returns every gauge's sampled history, ordered by name.
// Empty on a nil registry or when sampling was never armed.
func (r *Registry) SeriesSnapshot() []Series {
	if r == nil {
		return nil
	}
	out := make([]Series, 0, len(r.gauges))
	for _, g := range r.gaugesSorted() {
		out = append(out, Series{Name: g.name, Points: append([]Point(nil), g.series...)})
	}
	return out
}
