package ftl

import (
	"blockhead/internal/flash"
	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
)

// maybeGC runs garbage collection per the configured scheduling mode and
// returns the time at which the triggering host write may proceed.
//
// GCForeground is the device-opaque behavior the paper blames for read
// tail latency (§2.4): when the low-water mark trips, the triggering write
// stalls behind whole-victim relocations and erases, and every copy
// occupies LUNs that host I/O also needs.
//
// GCDeviceIncremental is the kindest plausible on-board controller: it
// starts earlier and relocates a small chunk per host write, so stalls
// shrink — but the device still cannot know data lifetimes, so its write
// amplification (and the DRAM/OP hardware costs) are unchanged. Ablation
// A5 quantifies exactly how much of the paper's tail argument survives
// this generosity.
func (d *Device) maybeGC(at sim.Time) sim.Time {
	// Relocations fan out across LUNs concurrently; per-copy attribution
	// would double-count overlapped time, so the sink is suspended and the
	// caller charges the host-visible stall (how far `at` advanced) instead.
	d.attr.Suspend()
	defer d.attr.Resume()
	// Blame bookkeeping for the triggering write's gc_stall charge: the
	// culprit is the dominant polluter of the victim whose reclamation
	// advanced time the most in this round (forceGC extends the same round).
	d.lastGCCulprit = telemetry.SelfTenant
	d.gcTopAdv = 0
	if d.cfg.GCMode == GCDeviceIncremental {
		return d.incrementalGC(at)
	}
	if d.hostSlots() > d.thresholdSlots {
		d.lastGCStall = 0
		return at
	}
	start := at
	for d.hostSlots() <= d.thresholdSlots {
		victim := d.pickVictim(at)
		if victim < 0 {
			break
		}
		done, ok := d.reclaimVictim(at, victim)
		if !ok {
			break
		}
		at = sim.Max(at, done)
	}
	d.lastGCStall = at - start
	if d.lastGCStall > 0 {
		d.hGCStall.Observe(d.lastGCStall)
		d.tr.Span(telemetry.ProcFTL, 0, "ftl", "gc_foreground_stall", start, at)
	}
	return at
}

// incrementalGC relocates at most GCChunkPages valid pages (and at most one
// erase) per call, starting when free slots fall below twice the low-water
// mark. If the pool still drains to the mark itself, it falls back to one
// blocking foreground pass.
func (d *Device) incrementalGC(at sim.Time) sim.Time {
	d.lastGCStall = 0
	slots := d.hostSlots()
	if slots > 2*d.thresholdSlots {
		return at
	}
	if slots <= d.thresholdSlots/2 {
		// Fell behind: one emergency foreground pass (stall visible).
		// Finish the in-flight incremental victim first; it is excluded
		// from victim selection, so its dead space is otherwise stranded.
		start := at
		if d.gcVictim >= 0 {
			v := d.gcVictim
			d.gcVictim = -1
			if done, ok := d.reclaimVictim(at, v); ok {
				at = sim.Max(at, done)
			}
		}
		for d.hostSlots() <= d.thresholdSlots {
			victim := d.pickVictim(at)
			if victim < 0 {
				break
			}
			done, ok := d.reclaimVictim(at, victim)
			if !ok {
				break
			}
			at = sim.Max(at, done)
		}
		d.lastGCStall = at - start
		if d.lastGCStall > 0 {
			d.hGCStall.Observe(d.lastGCStall)
			d.tr.Span(telemetry.ProcFTL, 0, "ftl", "gc_emergency_stall", start, at)
		}
		return at
	}
	budget := d.cfg.GCChunkPages
	erased := false
	for budget > 0 && !erased {
		if d.gcVictim < 0 {
			v := d.pickVictim(at)
			if v < 0 {
				return at
			}
			d.gcVictim, d.gcCursor = v, 0
			d.fl.Record(at, telemetry.FlightGCVictim, int32(v), "incremental", d.valid[v])
		}
		// The chunk's relocation (and eventual erase) occupies LUNs on the
		// victim's dominant polluter's behalf.
		d.attr.PushWorker(d.dominantPolluter(d.gcVictim))
		moved, done := d.relocateChunk(at, d.gcVictim, budget)
		// Chunk work proceeds concurrently; the write is not gated. The
		// high-water mark of relocation completions is kept only for the
		// crash-consistency barrier below.
		d.gcRelocDone = sim.Max(d.gcRelocDone, done)
		budget -= moved
		if int(d.gcCursor) >= d.pages {
			victim := d.gcVictim
			d.gcVictim = -1
			d.mGCVictims.Inc()
			eraseAt := at
			if d.cfg.Recovery {
				// Crash-consistency barrier: with power loss in the model,
				// the erase must not be issued before the relocated copies
				// are durable, or a crash in between destroys the only
				// surviving version.
				eraseAt = sim.Max(eraseAt, d.gcRelocDone)
			}
			if eraseDone, err := d.chip.EraseBlock(eraseAt, victim); err == nil {
				_ = eraseDone
				d.counters.BlockErases++
				d.valid[victim] = 0
				d.freeSlots += int64(d.pages)
				lun := d.geom.LUNOfBlock(victim)
				d.freePerLUN[lun] = append(d.freePerLUN[lun], victim)
				d.freeBit[victim] = true
				d.freeCount++
				d.gcRuns++
			} else {
				d.valid[victim] = 0
			}
			d.clearDeadBy(victim)
			erased = true
		}
		d.attr.PopWorker()
		if moved == 0 && !erased {
			return at // no progress possible right now
		}
	}
	return at
}

// clearDeadBy resets a block's per-tenant death counts once the block
// leaves circulation (erased back to the free pool, or retired).
func (d *Device) clearDeadBy(block int) {
	if d.deadBy != nil {
		d.deadBy[block] = [telemetry.MaxTenants]int32{}
	}
}

// relocateChunk copies up to budget valid pages of victim starting at the
// incremental cursor, returning how many were copied.
func (d *Device) relocateChunk(at sim.Time, victim, budget int) (moved int, done sim.Time) {
	done = at
	for moved < budget && int(d.gcCursor) < d.pages {
		p := int(d.gcCursor)
		d.gcCursor++
		ppn := d.ppn(victim, p)
		lpn := d.p2l[ppn]
		if lpn == unmapped {
			continue
		}
		dst, err := d.allocPage(0, true)
		if err != nil {
			d.gcCursor--
			return moved, done
		}
		cDone, err := d.chip.CopyPage(at, victim, p, d.blockOf(dst), d.pageOf(dst))
		if err == flash.ErrProgramFailed {
			// Destination retired mid-chunk: clean it up and retry the page
			// on the next call (the cursor is rewound).
			at = d.retireBlock(cDone, d.blockOf(dst))
			d.gcCursor--
			continue
		}
		if err == flash.ErrUncorrectable {
			// Detected loss of the victim page; drop the mapping.
			d.p2l[ppn] = unmapped
			d.l2p[lpn] = unmapped
			d.valid[victim]--
			continue
		}
		if err != nil {
			d.gcCursor--
			return moved, done
		}
		done = sim.Max(done, cDone)
		d.freeSlots--
		d.p2l[ppn] = unmapped
		d.l2p[lpn] = dst
		d.p2l[dst] = lpn
		d.valid[d.blockOf(dst)]++
		d.valid[victim]--
		if d.pageOwner != nil {
			d.pageOwner[dst] = d.pageOwner[ppn]
		}
		d.counters.FlashReadPages++
		d.counters.FlashProgramPages++
		d.counters.GCCopyPages++
		d.mGCCopies.Inc()
		moved++
	}
	return moved, done
}

// forceGC reclaims until the free pool can serve a host block allocation
// (or no victim remains). It backs the allocation-retry path: with many
// write streams, one stream's frontiers can be empty while the aggregate
// hostSlots figure still looks healthy, so the regular trigger never fired.
func (d *Device) forceGC(at sim.Time) sim.Time {
	d.attr.Suspend()
	defer d.attr.Resume()
	d.mGCForced.Inc()
	for d.freeCount <= gcReserveBlocks+1 {
		victim := d.pickVictim(at)
		if victim < 0 {
			break
		}
		done, ok := d.reclaimVictim(at, victim)
		if !ok {
			break
		}
		at = sim.Max(at, done)
	}
	return at
}

// reclaimVictim relocates and erases one victim under its dominant
// polluter's worker identity — the relocation traffic's LUN and channel
// occupancy is owned by the culprit, so later arrivals' waits blame it —
// and records the culprit of the round's largest time advance for the
// triggering write's gc_stall blame charge.
func (d *Device) reclaimVictim(at sim.Time, victim int) (sim.Time, bool) {
	c := d.dominantPolluter(victim)
	d.attr.PushWorker(c)
	done, ok := d.relocateAndErase(at, victim)
	d.attr.PopWorker()
	if ok {
		if adv := done - at; adv > d.gcTopAdv {
			d.gcTopAdv, d.lastGCCulprit = adv, c
		}
	}
	return done, ok
}

// isFrontier reports whether block is a currently open write frontier.
func (d *Device) isFrontier(block int) bool {
	for _, fronts := range d.hostFront {
		for i := range fronts {
			if fronts[i].block == block {
				return true
			}
		}
	}
	for i := range d.gcFront {
		if d.gcFront[i].block == block {
			return true
		}
	}
	return false
}

// pickVictim selects a GC victim per the configured policy, or -1 if no
// block is eligible. Only closed, non-frontier, non-free blocks are
// candidates — fully-written blocks plus partially-written blocks sealed by
// crash recovery (torn frontiers GC must be able to reclaim); ties break
// toward the least-erased block (wear leveling).
func (d *Device) pickVictim(at sim.Time) int {
	best := -1
	var bestValid int64
	var bestScore float64
	for b := 0; b < d.geom.TotalBlocks(); b++ {
		if d.chip.IsBad(b) || d.isFree(b) || d.isFrontier(b) || b == d.gcVictim {
			continue
		}
		if d.chip.WrittenPages(b) < d.pages && !d.chip.IsSealed(b) {
			continue
		}
		v := d.valid[b]
		if v >= int64(d.pages) {
			continue // nothing to gain
		}
		switch d.cfg.GCPolicy {
		case CostBenefit:
			u := float64(v) / float64(d.pages)
			age := float64(at-d.lastInval[b]) + 1
			var score float64
			if u == 0 {
				score = age * 1e12 // free lunch: a fully dead block
			} else {
				score = age * (1 - u) / (2 * u)
			}
			if best < 0 || score > bestScore ||
				(score == bestScore && d.chip.EraseCount(b) < d.chip.EraseCount(best)) {
				best, bestScore = b, score
			}
		default: // Greedy
			if best < 0 || v < bestValid ||
				(v == bestValid && d.chip.EraseCount(b) < d.chip.EraseCount(best)) {
				best, bestValid = b, v
			}
		}
	}
	return best
}

func (d *Device) isFree(block int) bool { return d.freeBit[block] }

// hostSlots reports the page slots reachable by host allocation: free
// blocks above the GC reserve plus residual space in the host frontiers.
// GC triggers on this quantity — space parked in GC frontiers cannot serve
// host writes, so counting it would let the device run dry (§2.4's opaque
// foreground GC is bad enough without deadlocking).
func (d *Device) hostSlots() int64 {
	free := int64(d.freeCount - gcReserveBlocks)
	if free < 0 {
		free = 0
	}
	slots := free * int64(d.pages)
	for _, fronts := range d.hostFront {
		for i := range fronts {
			if b := fronts[i].block; b >= 0 {
				slots += int64(d.pages - d.chip.WrittenPages(b))
			}
		}
	}
	return slots
}

// gcSlots reports the page slots reachable by GC allocation: free blocks
// plus residual space in the GC frontier set (or the shared frontiers when
// hot/cold separation is off).
func (d *Device) gcSlots() int64 {
	slots := int64(d.freeCount) * int64(d.pages)
	if d.cfg.HotColdSeparation {
		for i := range d.gcFront {
			if b := d.gcFront[i].block; b >= 0 {
				slots += int64(d.pages - d.chip.WrittenPages(b))
			}
		}
		return slots
	}
	for _, fronts := range d.hostFront {
		for i := range fronts {
			if b := fronts[i].block; b >= 0 {
				slots += int64(d.pages - d.chip.WrittenPages(b))
			}
		}
	}
	return slots
}

// dropFrontier removes block from every open frontier reference.
func (d *Device) dropFrontier(block int) {
	for _, fronts := range d.hostFront {
		for i := range fronts {
			if fronts[i].block == block {
				fronts[i].block = -1
			}
		}
	}
	for i := range d.gcFront {
		if d.gcFront[i].block == block {
			d.gcFront[i].block = -1
		}
	}
}

// retireBlock handles a block the media just retired mid-workload (a failed
// program grew the bad-block set): the block is stripped from the frontier
// set, its now-unprogrammable slots are deducted from the free pool, and its
// valid pages — still readable on the grown-bad block — are migrated to
// fresh locations so the device no longer depends on marginal cells. A
// migration destination failing in turn joins the work list. Returns when
// the migration traffic completes.
func (d *Device) retireBlock(at sim.Time, block int) sim.Time {
	// Migration copies fan out like GC; per-copy attribution would
	// double-count, so the caller charges the host-visible stall instead.
	d.attr.Suspend()
	defer d.attr.Resume()
	work := []int{block}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		d.dropFrontier(b)
		d.freeSlots -= int64(d.pages - d.chip.WrittenPages(b))
		d.fl.Record(at, telemetry.FlightFault, int32(b), "ftl_retire", d.valid[b])
		for p := 0; p < d.chip.WrittenPages(b); p++ {
			ppn := d.ppn(b, p)
			lpn := d.p2l[ppn]
			if lpn == unmapped {
				continue
			}
			for {
				dst, err := d.allocPage(0, true)
				if err != nil {
					// No GC-reachable space to migrate into: the page stays
					// mapped on the retired block, which remains readable.
					break
				}
				done, cErr := d.chip.CopyPage(at, b, p, d.blockOf(dst), d.pageOf(dst))
				if cErr == flash.ErrProgramFailed {
					work = append(work, d.blockOf(dst))
					continue
				}
				if cErr != nil {
					// Uncorrectable source read: a detected loss; drop the
					// mapping.
					d.p2l[ppn] = unmapped
					d.l2p[lpn] = unmapped
					d.valid[b]--
					break
				}
				at = sim.Max(at, done)
				d.freeSlots--
				d.p2l[ppn] = unmapped
				d.l2p[lpn] = dst
				d.p2l[dst] = lpn
				d.valid[d.blockOf(dst)]++
				d.valid[b]--
				if d.pageOwner != nil {
					d.pageOwner[dst] = d.pageOwner[ppn]
				}
				d.counters.FlashReadPages++
				d.counters.FlashProgramPages++
				d.counters.GCCopyPages++
				break
			}
		}
	}
	return at
}

// relocateAndErase copies the victim's valid pages forward, erases it, and
// returns it to the free pool. Copies are issued concurrently at time at and
// serialize per-LUN through the flash resource model; the erase queues
// behind the victim-LUN reads. Returns the erase completion time.
func (d *Device) relocateAndErase(at sim.Time, victim int) (sim.Time, bool) {
	// Refuse up front if the victim's survivors cannot fit in GC-reachable
	// space: a partial relocation would consume slots without freeing the
	// block, leaking space until reclamation deadlocks.
	if d.valid[victim] > d.gcSlots() {
		return at, false
	}
	copied := d.counters.GCCopyPages
	var lastDone = at
	for p := 0; p < d.pages; p++ {
		ppn := d.ppn(victim, p)
		lpn := d.p2l[ppn]
		if lpn == unmapped {
			continue
		}
		for {
			dst, err := d.allocPage(0, true)
			if err != nil {
				return at, false // out of space mid-GC; caller surfaces ErrOutOfSpace
			}
			done, err := d.chip.CopyPage(at, victim, p, d.blockOf(dst), d.pageOf(dst))
			if err == flash.ErrProgramFailed {
				// The destination went bad mid-GC: retire it (migrating
				// anything already copied into it) and retry this page.
				at = d.retireBlock(done, d.blockOf(dst))
				continue
			}
			if err == flash.ErrUncorrectable {
				// The victim page itself is unreadable after the retry
				// ladder: a detected loss. Drop the mapping rather than
				// strand reclamation on it.
				d.p2l[ppn] = unmapped
				d.l2p[lpn] = unmapped
				d.valid[victim]--
				break
			}
			if err != nil {
				return at, false
			}
			if done > lastDone {
				lastDone = done
			}
			d.freeSlots--
			// Re-point the mapping.
			d.p2l[ppn] = unmapped
			d.l2p[lpn] = dst
			d.p2l[dst] = lpn
			d.valid[d.blockOf(dst)]++
			d.valid[victim]--
			if d.pageOwner != nil {
				d.pageOwner[dst] = d.pageOwner[ppn]
			}
			d.counters.FlashReadPages++
			d.counters.FlashProgramPages++
			d.counters.GCCopyPages++
			break
		}
	}

	d.gcRuns++
	d.mGCVictims.Inc()
	d.fl.Record(at, telemetry.FlightGCVictim, int32(victim), "", int64(d.counters.GCCopyPages-copied))
	d.mGCCopies.Add(d.counters.GCCopyPages - copied)
	d.tr.SpanArg(telemetry.ProcFTL, 0, "ftl", "gc_relocate", at, lastDone,
		"victim", int64(victim))
	eraseAt := at
	if d.cfg.Recovery {
		// Crash-consistency barrier: never issue the erase before the
		// relocated copies are durable (a crash in between would destroy
		// the only surviving version of the victim's live pages).
		eraseAt = sim.Max(eraseAt, lastDone)
	}
	d.clearDeadBy(victim) // the block leaves circulation either way below
	eraseDone, err := d.chip.EraseBlock(eraseAt, victim)
	if err != nil {
		// ErrWornOut: the block is retired and its capacity is permanently
		// lost (it stays out of the free pool and out of freeSlots). Any
		// other error is a bug; either way the block is not reusable.
		_ = flash.ErrWornOut
		d.valid[victim] = 0
		return lastDone, true
	}
	d.counters.BlockErases++
	d.valid[victim] = 0
	d.freeSlots += int64(d.pages)
	lun := d.geom.LUNOfBlock(victim)
	d.freePerLUN[lun] = append(d.freePerLUN[lun], victim)
	d.freeBit[victim] = true
	d.freeCount++
	return sim.Max(lastDone, eraseDone), true
}
