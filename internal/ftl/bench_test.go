package ftl

import (
	"testing"

	"blockhead/internal/flash"
	"blockhead/internal/sim"
	"blockhead/internal/workload"
)

func benchDev(b *testing.B, op float64) *Device {
	b.Helper()
	d, err := NewDefault(flash.Geometry{Channels: 4, DiesPerChan: 1, PlanesPerDie: 1,
		BlocksPerLUN: 128, PagesPerBlock: 64, PageSize: 4096},
		flash.LatenciesFor(flash.TLC), op)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkWritePageSequential measures the sequential write path with no
// GC pressure.
func BenchmarkWritePageSequential(b *testing.B) {
	d := benchDev(b, 0.1)
	var at sim.Time
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		at, err = d.WritePage(at, int64(i)%d.CapacityPages(), nil)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWritePageSteadyStateGC measures random overwrites at GC steady
// state — the per-op cost including amortized relocation.
func BenchmarkWritePageSteadyStateGC(b *testing.B) {
	d := benchDev(b, 0.1)
	var at sim.Time
	for lpn := int64(0); lpn < d.CapacityPages(); lpn++ {
		at, _ = d.WritePage(at, lpn, nil)
	}
	keys := workload.NewUniform(workload.NewSource(1), d.CapacityPages())
	for i := int64(0); i < d.CapacityPages(); i++ { // age
		at, _ = d.WritePage(at, keys.Next(), nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		at, err = d.WritePage(at, keys.Next(), nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(d.Counters().WriteAmp(), "WA")
}

func BenchmarkReadPageMapped(b *testing.B) {
	d := benchDev(b, 0.1)
	at, _ := d.WritePage(0, 7, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		at, _, err = d.ReadPage(at, 7)
		if err != nil {
			b.Fatal(err)
		}
	}
}
