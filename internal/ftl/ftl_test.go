package ftl

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"

	"blockhead/internal/flash"
	"blockhead/internal/sim"
)

func testGeom() flash.Geometry {
	return flash.Geometry{Channels: 2, DiesPerChan: 2, PlanesPerDie: 1,
		BlocksPerLUN: 16, PagesPerBlock: 32, PageSize: 4096}
}

func mustNew(t *testing.T, cfg Config) *Device {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func defaultCfg() Config {
	return Config{Geom: testGeom(), Lat: flash.LatenciesFor(flash.TLC),
		OPFraction: 0.1, HotColdSeparation: true, TrimSupported: true}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	cfg := defaultCfg()
	cfg.OPFraction = 1.5
	if _, err := New(cfg); err == nil {
		t.Error("OPFraction 1.5 accepted")
	}
	cfg = defaultCfg()
	cfg.OPFraction = -0.1
	if _, err := New(cfg); err == nil {
		t.Error("negative OPFraction accepted")
	}
}

func TestCapacityAccounting(t *testing.T) {
	d := mustNew(t, defaultCfg())
	raw := testGeom().TotalPages()
	if d.CapacityPages() >= raw {
		t.Errorf("logical capacity %d must be below raw %d", d.CapacityPages(), raw)
	}
	// OP + reserve: logical = raw/(1.1) - reserve, where the reserve floor
	// (2*LUNs + lowWater + 4 = 16 blocks here) dominates 3.5% of 64 blocks.
	reserve := int64(16 * testGeom().PagesPerBlock)
	want := int64(float64(raw)/1.1) - reserve
	if d.CapacityPages() != want {
		t.Errorf("CapacityPages = %d, want %d", d.CapacityPages(), want)
	}
	if d.PageSize() != 4096 {
		t.Errorf("PageSize = %d", d.PageSize())
	}
}

func TestWriteReadRange(t *testing.T) {
	d := mustNew(t, defaultCfg())
	if _, err := d.WritePage(0, -1, nil); !errors.Is(err, ErrOutOfRange) {
		t.Error("negative lpn accepted")
	}
	if _, err := d.WritePage(0, d.CapacityPages(), nil); !errors.Is(err, ErrOutOfRange) {
		t.Error("lpn == capacity accepted")
	}
	if _, _, err := d.ReadPage(0, 0); !errors.Is(err, ErrUnmapped) {
		t.Error("read of unmapped page must fail")
	}
	done, err := d.WritePage(0, 7, nil)
	if err != nil || done <= 0 {
		t.Fatalf("write: done=%d err=%v", done, err)
	}
	rdone, _, err := d.ReadPage(done, 7)
	if err != nil || rdone <= done {
		t.Fatalf("read: done=%d err=%v", rdone, err)
	}
}

func TestDataPlane(t *testing.T) {
	cfg := defaultCfg()
	cfg.StoreData = true
	d := mustNew(t, cfg)
	payload := []byte("hello flash")
	at, _ := d.WritePage(0, 3, payload)
	_, got, err := d.ReadPage(at, 3)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello flash" {
		t.Errorf("payload round trip: %q", got)
	}
	// Overwrite replaces the payload.
	at, _ = d.WritePage(at, 3, []byte("v2"))
	_, got, _ = d.ReadPage(at, 3)
	if string(got) != "v2" {
		t.Errorf("overwrite payload: %q", got)
	}
}

func TestOverwriteInvalidates(t *testing.T) {
	d := mustNew(t, defaultCfg())
	var at sim.Time
	for i := 0; i < 10; i++ {
		at, _ = d.WritePage(at, 0, nil)
	}
	c := d.Counters()
	if c.HostWritePages != 10 {
		t.Errorf("HostWritePages = %d", c.HostWritePages)
	}
	// All 10 programs happened, but only 1 logical page is live.
	if c.FlashProgramPages != 10 {
		t.Errorf("FlashProgramPages = %d", c.FlashProgramPages)
	}
	var live int64
	for _, v := range d.valid {
		live += v
	}
	if live != 1 {
		t.Errorf("live pages = %d, want 1", live)
	}
}

// fillSequential maps every logical page once.
func fillSequential(t testing.TB, d *Device, at sim.Time) sim.Time {
	for lpn := int64(0); lpn < d.CapacityPages(); lpn++ {
		var err error
		at, err = d.WritePage(at, lpn, nil)
		if err != nil {
			t.Fatalf("fill write lpn %d: %v", lpn, err)
		}
	}
	return at
}

func TestGCReclaimsSpace(t *testing.T) {
	d := mustNew(t, defaultCfg())
	at := fillSequential(t, d, 0)
	// Overwrite everything twice more: forces sustained GC.
	rng := rand.New(rand.NewSource(1))
	n := d.CapacityPages() * 2
	for i := int64(0); i < n; i++ {
		var err error
		at, err = d.WritePage(at, rng.Int63n(d.CapacityPages()), nil)
		if err != nil {
			t.Fatalf("overwrite %d: %v", i, err)
		}
	}
	if d.GCRuns() == 0 {
		t.Error("GC never ran despite 3x capacity written")
	}
	wa := d.Counters().WriteAmp()
	if wa <= 1.0 {
		t.Errorf("WriteAmp = %v, want > 1 under random overwrite", wa)
	}
	if d.Counters().GCCopyPages == 0 {
		t.Error("GC copied nothing")
	}
}

// The paper's §2.2 experiment: WA falls steeply as OP grows. We verify the
// monotone trend here; the full sweep with calibrated magnitudes is E2.
func TestWriteAmpDecreasesWithOP(t *testing.T) {
	was := make([]float64, 0, 2)
	for _, op := range []float64{0.0, 0.25} {
		cfg := defaultCfg()
		// A geometry with enough blocks that the fractional reserve (3.5%),
		// not the fixed floor, determines the spare at OP = 0.
		cfg.Geom = flash.Geometry{Channels: 2, DiesPerChan: 1, PlanesPerDie: 1,
			BlocksPerLUN: 128, PagesPerBlock: 32, PageSize: 4096}
		cfg.OPFraction = op
		d := mustNew(t, cfg)
		at := fillSequential(t, d, 0)
		rng := rand.New(rand.NewSource(42))
		for i := int64(0); i < 2*d.CapacityPages(); i++ {
			var err error
			at, err = d.WritePage(at, rng.Int63n(d.CapacityPages()), nil)
			if err != nil {
				t.Fatal(err)
			}
		}
		was = append(was, d.Counters().WriteAmp())
	}
	if was[1] >= was[0] {
		t.Errorf("WA at 25%% OP (%v) must be below WA at 0%% OP (%v)", was[1], was[0])
	}
	if was[0] < 3 {
		t.Errorf("WA at 0%% OP = %v, expected severe amplification", was[0])
	}
}

func TestTrim(t *testing.T) {
	d := mustNew(t, defaultCfg())
	at, _ := d.WritePage(0, 5, nil)
	if err := d.Trim(at, 5, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.ReadPage(at, 5); !errors.Is(err, ErrUnmapped) {
		t.Error("trimmed page still mapped")
	}
	if err := d.Trim(at, d.CapacityPages()-1, 2); !errors.Is(err, ErrOutOfRange) {
		t.Error("out-of-range trim accepted")
	}
	// Trim without support is a no-op.
	cfg := defaultCfg()
	cfg.TrimSupported = false
	d2 := mustNew(t, cfg)
	at, _ = d2.WritePage(0, 5, nil)
	d2.Trim(at, 5, 1)
	if _, _, err := d2.ReadPage(at, 5); err != nil {
		t.Error("trim without support must not unmap")
	}
}

func TestTrimReducesGCWork(t *testing.T) {
	run := func(trim bool) float64 {
		cfg := defaultCfg()
		cfg.TrimSupported = trim
		d, _ := New(cfg)
		var at sim.Time
		at = fillSequential(t, d, at)
		// Delete half the pages, then overwrite the other half repeatedly.
		if trim {
			d.Trim(at, 0, d.CapacityPages()/2)
		}
		rng := rand.New(rand.NewSource(7))
		half := d.CapacityPages() / 2
		for i := int64(0); i < 3*half; i++ {
			var err error
			at, err = d.WritePage(at, half+rng.Int63n(half), nil)
			if err != nil {
				t.Fatal(err)
			}
		}
		return d.Counters().WriteAmp()
	}
	withTrim, withoutTrim := run(true), run(false)
	if withTrim >= withoutTrim {
		t.Errorf("trim must reduce WA: with=%v without=%v", withTrim, withoutTrim)
	}
}

func TestGCStallVisible(t *testing.T) {
	d := mustNew(t, defaultCfg())
	at := fillSequential(t, d, 0)
	rng := rand.New(rand.NewSource(3))
	sawStall := false
	for i := int64(0); i < 2*d.CapacityPages(); i++ {
		var err error
		at, err = d.WritePage(at, rng.Int63n(d.CapacityPages()), nil)
		if err != nil {
			t.Fatal(err)
		}
		if d.LastGCStall() > 0 {
			sawStall = true
			if d.LastGCStall() < d.Flash().Lat.EraseBlock {
				t.Errorf("GC stall %v shorter than one erase", d.LastGCStall())
			}
		}
	}
	if !sawStall {
		t.Error("no foreground GC stall observed")
	}
}

func TestWearLeveling(t *testing.T) {
	d := mustNew(t, defaultCfg())
	at := fillSequential(t, d, 0)
	rng := rand.New(rand.NewSource(9))
	for i := int64(0); i < 6*d.CapacityPages(); i++ {
		var err error
		at, err = d.WritePage(at, rng.Int63n(d.CapacityPages()), nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	spread := d.Flash().TotalEraseSpread()
	max := d.Flash().MaxEraseCount()
	if max == 0 {
		t.Fatal("no erases happened")
	}
	if float64(spread) > 0.8*float64(max)+4 {
		t.Errorf("wear spread %d too large vs max %d", spread, max)
	}
}

func TestDRAMFootprint(t *testing.T) {
	d := mustNew(t, defaultCfg())
	want := 4*d.CapacityPages() + 4*int64(testGeom().TotalBlocks())
	if d.DRAMFootprintBytes() != want {
		t.Errorf("DRAMFootprintBytes = %d, want %d", d.DRAMFootprintBytes(), want)
	}
}

func TestUtilization(t *testing.T) {
	d := mustNew(t, defaultCfg())
	if d.Utilization() != 0 {
		t.Error("fresh device utilization must be 0")
	}
	d.WritePage(0, 0, nil)
	if d.Utilization() <= 0 {
		t.Error("utilization must rise after a write")
	}
}

func TestGCPolicyString(t *testing.T) {
	if Greedy.String() != "greedy" || CostBenefit.String() != "cost-benefit" {
		t.Error("GCPolicy.String wrong")
	}
}

func TestCostBenefitPolicyWorks(t *testing.T) {
	cfg := defaultCfg()
	cfg.GCPolicy = CostBenefit
	d := mustNew(t, cfg)
	at := fillSequential(t, d, 0)
	rng := rand.New(rand.NewSource(11))
	for i := int64(0); i < 2*d.CapacityPages(); i++ {
		var err error
		at, err = d.WritePage(at, rng.Int63n(d.CapacityPages()), nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	if d.GCRuns() == 0 {
		t.Error("cost-benefit GC never ran")
	}
}

// Model check: the FTL must behave like a flat page store. We mirror every
// write into a map and verify all mappings survive heavy GC churn.
func TestReadAfterWriteUnderGC(t *testing.T) {
	cfg := defaultCfg()
	cfg.StoreData = true
	d := mustNew(t, cfg)
	model := make(map[int64]uint64)
	rng := rand.New(rand.NewSource(5))
	var at sim.Time
	buf := func(v uint64) []byte {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, v)
		return b
	}
	for i := 0; i < 4000; i++ {
		lpn := rng.Int63n(d.CapacityPages())
		v := rng.Uint64()
		var err error
		at, err = d.WritePage(at, lpn, buf(v))
		if err != nil {
			t.Fatal(err)
		}
		model[lpn] = v
	}
	for lpn, v := range model {
		_, got, err := d.ReadPage(at, lpn)
		if err != nil {
			t.Fatalf("read lpn %d: %v", lpn, err)
		}
		if binary.LittleEndian.Uint64(got) != v {
			t.Fatalf("lpn %d: got %d, want %d", lpn, binary.LittleEndian.Uint64(got), v)
		}
	}
}

// Invariant check after churn: L2P and P2L are mutually consistent and
// valid-counts match the reverse map.
func TestMappingInvariants(t *testing.T) {
	d := mustNew(t, defaultCfg())
	rng := rand.New(rand.NewSource(13))
	var at sim.Time
	for i := 0; i < 5000; i++ {
		var err error
		at, err = d.WritePage(at, rng.Int63n(d.CapacityPages()), nil)
		if err != nil {
			t.Fatal(err)
		}
		if i%10 == 0 {
			d.Trim(at, rng.Int63n(d.CapacityPages()), 1)
		}
	}
	// L2P -> P2L consistency.
	for lpn, ppn := range d.l2p {
		if ppn == unmapped {
			continue
		}
		if d.p2l[ppn] != int64(lpn) {
			t.Fatalf("l2p[%d]=%d but p2l[%d]=%d", lpn, ppn, ppn, d.p2l[ppn])
		}
	}
	// Valid counts match P2L.
	perBlock := make([]int64, testGeom().TotalBlocks())
	for ppn, lpn := range d.p2l {
		if lpn != unmapped {
			perBlock[ppn/testGeom().PagesPerBlock]++
		}
	}
	for b, v := range perBlock {
		if d.valid[b] != v {
			t.Fatalf("valid[%d]=%d but p2l says %d", b, d.valid[b], v)
		}
	}
}

func TestOutOfSpaceWhenOverfull(t *testing.T) {
	// Tiny device with no trim: writing unique pages beyond capacity is
	// impossible, but overwrites must always succeed.
	cfg := defaultCfg()
	d := mustNew(t, cfg)
	at := fillSequential(t, d, 0)
	// Device is 100% utilized. Overwrites still work (GC reclaims stale).
	for i := int64(0); i < d.CapacityPages(); i++ {
		var err error
		at, err = d.WritePage(at, i, nil)
		if err != nil {
			t.Fatalf("overwrite at full utilization failed: %v", err)
		}
	}
}

func TestMultiStreamSeparation(t *testing.T) {
	cfg := defaultCfg()
	cfg.Streams = 2
	d := mustNew(t, cfg)
	if _, err := d.WritePageStream(0, 0, 2, nil); !errors.Is(err, ErrBadStream) {
		t.Errorf("out-of-range stream: %v", err)
	}
	if _, err := d.WritePageStream(0, 0, -1, nil); !errors.Is(err, ErrBadStream) {
		t.Errorf("negative stream: %v", err)
	}
	at, err := d.WritePageStream(0, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err = d.WritePageStream(at, 1, 1, nil); err != nil {
		t.Fatal(err)
	}
	// The two streams' pages must land in different erasure blocks.
	b0 := d.blockOf(d.l2p[0])
	b1 := d.blockOf(d.l2p[1])
	if b0 == b1 {
		t.Errorf("streams shared block %d", b0)
	}
}

// Multi-stream separation must reduce WA on a mixed-lifetime workload (the
// §2.3 claim, tested at unit scale).
func TestMultiStreamReducesWA(t *testing.T) {
	geom := flash.Geometry{Channels: 2, DiesPerChan: 1, PlanesPerDie: 1,
		BlocksPerLUN: 96, PagesPerBlock: 32, PageSize: 4096}
	run := func(streams int) float64 {
		d, err := New(Config{Geom: geom, Lat: flash.LatenciesFor(flash.TLC),
			OPFraction: 0.07, Streams: streams,
			HotColdSeparation: true, TrimSupported: true})
		if err != nil {
			t.Fatal(err)
		}
		var at sim.Time
		for lpn := int64(0); lpn < d.CapacityPages(); lpn++ {
			if at, err = d.WritePage(at, lpn, nil); err != nil {
				t.Fatal(err)
			}
		}
		// Two lifetime groups: the first half of the LBA space takes 95% of
		// the overwrites.
		rng := rand.New(rand.NewSource(3))
		half := d.CapacityPages() / 2
		base := *d.Counters()
		for i := int64(0); i < 2*d.CapacityPages(); i++ {
			lpn := half + rng.Int63n(half)
			stream := 1 % streams
			if rng.Float64() < 0.95 {
				lpn = rng.Int63n(half)
				stream = 0
			}
			if at, err = d.WritePageStream(at, lpn, stream, nil); err != nil {
				t.Fatal(err)
			}
		}
		c := *d.Counters()
		return float64(c.FlashProgramPages-base.FlashProgramPages) /
			float64(c.HostWritePages-base.HostWritePages)
	}
	one := run(1)
	two := run(2)
	if two >= one {
		t.Errorf("2-stream WA (%.2f) must beat 1-stream (%.2f)", two, one)
	}
}

func TestDeviceIncrementalGC(t *testing.T) {
	run := func(mode GCMode) (maxStall sim.Time, wa float64) {
		cfg := defaultCfg()
		cfg.GCMode = mode
		d := mustNew(t, cfg)
		at := fillSequential(t, d, 0)
		rng := rand.New(rand.NewSource(21))
		for i := int64(0); i < 3*d.CapacityPages(); i++ {
			var err error
			at, err = d.WritePage(at, rng.Int63n(d.CapacityPages()), nil)
			if err != nil {
				t.Fatal(err)
			}
			if d.LastGCStall() > maxStall {
				maxStall = d.LastGCStall()
			}
		}
		return maxStall, d.Counters().WriteAmp()
	}
	fgStall, fgWA := run(GCForeground)
	incStall, incWA := run(GCDeviceIncremental)
	if incStall >= fgStall {
		t.Errorf("incremental max stall %v must be below foreground %v", incStall, fgStall)
	}
	if fgWA <= 1 || incWA <= 1 {
		t.Errorf("both modes must amplify under churn: fg=%v inc=%v", fgWA, incWA)
	}
}

func TestDeviceIncrementalGCCorrectness(t *testing.T) {
	cfg := defaultCfg()
	cfg.GCMode = GCDeviceIncremental
	cfg.StoreData = true
	d := mustNew(t, cfg)
	model := map[int64]uint64{}
	rng := rand.New(rand.NewSource(22))
	var at sim.Time
	buf := func(v uint64) []byte {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, v)
		return b
	}
	for i := 0; i < 6000; i++ {
		lpn := rng.Int63n(d.CapacityPages())
		v := rng.Uint64()
		var err error
		at, err = d.WritePage(at, lpn, buf(v))
		if err != nil {
			t.Fatal(err)
		}
		model[lpn] = v
	}
	for lpn, v := range model {
		_, got, err := d.ReadPage(at, lpn)
		if err != nil {
			t.Fatalf("read %d: %v", lpn, err)
		}
		if binary.LittleEndian.Uint64(got) != v {
			t.Fatalf("lpn %d corrupted under incremental GC", lpn)
		}
	}
	if d.GCRuns() == 0 {
		t.Error("incremental GC never completed a victim")
	}
}

func TestGCModeString(t *testing.T) {
	if GCForeground.String() != "foreground" || GCDeviceIncremental.String() != "device-incremental" {
		t.Error("GCMode.String wrong")
	}
}
