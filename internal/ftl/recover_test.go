package ftl

import (
	"errors"
	"testing"

	"blockhead/internal/flash"
	"blockhead/internal/sim"
)

// recoveryFTL builds a small page-mapped device with recovery armed.
func recoveryFTL(t *testing.T) *Device {
	t.Helper()
	d, err := New(Config{
		Geom: flash.Geometry{Channels: 2, DiesPerChan: 2, PlanesPerDie: 1,
			BlocksPerLUN: 8, PagesPerBlock: 16, PageSize: 4096},
		Lat:           flash.LatenciesFor(flash.TLC),
		OPFraction:    0.25,
		TrimSupported: true,
		Recovery:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestRecoverRebuildsMapping: after a crash the OOB scan rebuilds the full
// logical-to-physical map, newest version wins for overwritten pages, and
// the sequence counter resumes past everything observed.
func TestRecoverRebuildsMapping(t *testing.T) {
	d := recoveryFTL(t)
	n := d.CapacityPages()
	var at sim.Time
	var writes uint64
	wantSeq := make(map[int64]uint64)
	write := func(lpn int64) {
		done, err := d.WritePage(at, lpn, nil)
		if err != nil {
			t.Fatalf("write lpn %d: %v", lpn, err)
		}
		at = done
		writes++
		wantSeq[lpn] = writes
	}
	for lpn := int64(0); lpn < n; lpn++ {
		write(lpn)
	}
	// Overwrite a slice of the space so stale versions exist on the media
	// and the scan must pick the winners.
	for lpn := int64(0); lpn < n/2; lpn++ {
		write(lpn)
	}

	rep, err := d.Recover(at)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LostPages != 0 {
		t.Fatalf("crash at the settled clock lost %d pages", rep.LostPages)
	}
	if rep.RecoveredMappings != n {
		t.Fatalf("recovered %d mappings, want %d", rep.RecoveredMappings, n)
	}
	// The conventional scan reads every written page's OOB area: strictly
	// more reads than live pages (stale versions included).
	if rep.ScannedPages <= n {
		t.Fatalf("scanned %d pages, want > %d (stale versions scanned too)", rep.ScannedPages, n)
	}
	for lpn := int64(0); lpn < n; lpn++ {
		_, gotLPN, seq, err := d.ReadMeta(rep.RecoveredAt, lpn)
		if err != nil {
			t.Fatalf("ReadMeta(%d) after recovery: %v", lpn, err)
		}
		if gotLPN != lpn || seq != wantSeq[lpn] {
			t.Fatalf("lpn %d recovered to (lpn %d, seq %d), want seq %d",
				lpn, gotLPN, seq, wantSeq[lpn])
		}
	}
	if got := d.NextSeq(); got != writes+1 {
		t.Fatalf("NextSeq after recovery = %d, want %d", got, writes+1)
	}
	// The device is writable again and keeps stamping monotonically.
	done, err := d.WritePage(rep.RecoveredAt, 0, nil)
	if err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
	if _, _, seq, err := d.ReadMeta(done, 0); err != nil || seq != writes+1 {
		t.Fatalf("post-recovery write has seq %d (err %v), want %d", seq, err, writes+1)
	}
}

// TestRecoverDropsInFlight: a write still in flight at the cut is dropped
// and the page falls back to its durable predecessor.
func TestRecoverDropsInFlight(t *testing.T) {
	d := recoveryFTL(t)
	d1, err := d.WritePage(0, 0, nil) // seq 1, durable
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.WritePage(d1, 0, nil); err != nil { // seq 2, in flight at d1
		t.Fatal(err)
	}
	rep, err := d.Recover(d1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LostPages == 0 {
		t.Fatal("in-flight write not reported lost")
	}
	_, _, seq, err := d.ReadMeta(rep.RecoveredAt, 0)
	if err != nil || seq != 1 {
		t.Fatalf("lpn 0 recovered to seq %d (err %v), want durable seq 1", seq, err)
	}
}

// TestRecoverResurrectsTrimmed: trims are DRAM metadata, so a crash legally
// resurrects the durable copy — the documented (and oracle-sanctioned)
// behavior.
func TestRecoverResurrectsTrimmed(t *testing.T) {
	d := recoveryFTL(t)
	done, err := d.WritePage(0, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Trim(done, 7, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := d.ReadMeta(done, 7); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("trimmed page: err = %v, want ErrUnmapped", err)
	}
	rep, err := d.Recover(done)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, seq, err := d.ReadMeta(rep.RecoveredAt, 7); err != nil || seq != 1 {
		t.Fatalf("trimmed page after crash: seq %d, err %v; want the durable copy back", seq, err)
	}
}

// TestRecoverRequiresRecoveryConfig: Recover on a device built without
// Config.Recovery is refused.
func TestRecoverRequiresRecoveryConfig(t *testing.T) {
	d, err := NewDefault(flash.Geometry{Channels: 2, DiesPerChan: 2, PlanesPerDie: 1,
		BlocksPerLUN: 8, PagesPerBlock: 16, PageSize: 4096},
		flash.LatenciesFor(flash.TLC), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Recover(0); err == nil {
		t.Fatal("Recover without Config.Recovery succeeded")
	}
}
