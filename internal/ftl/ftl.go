// Package ftl implements a conventional block-interface SSD: a page-mapped
// flash translation layer with garbage collection, overprovisioning, and
// wear leveling (§2.1 of the paper, "Conventional SSDs").
//
// The FTL exposes the flat, randomly-writable logical page address space the
// paper's block interface describes, and hides flash's erase-before-program
// constraint by:
//
//   - translating each logical page to a physical page (the mapping table
//     whose on-board DRAM cost §2.2 estimates at ~1 GB per TB),
//   - garbage collecting erasure blocks that hold a mixture of valid and
//     invalid pages, copying valid pages forward (the write amplification
//     of E2), and
//   - wear leveling by always allocating the least-erased free block.
//
// Garbage collection is device-opaque and foreground, exactly the behavior
// the paper blames for tail latency: when free space runs low, the write
// that trips the low-water mark stalls behind a full victim relocation and
// erase, and reads queued on the same LUNs wait behind the GC traffic.
package ftl

import (
	"errors"
	"fmt"

	"blockhead/internal/fault"
	"blockhead/internal/flash"
	"blockhead/internal/sim"
	"blockhead/internal/stats"
	"blockhead/internal/telemetry"
)

// GCPolicy selects the victim-block policy.
type GCPolicy int

const (
	// Greedy picks the block with the fewest valid pages. Near-optimal for
	// uniform workloads.
	Greedy GCPolicy = iota
	// CostBenefit weighs reclaimable space against copy cost and block age
	// (the classic LFS/eNVy policy); better under skew.
	CostBenefit
)

// String implements fmt.Stringer.
func (p GCPolicy) String() string {
	if p == CostBenefit {
		return "cost-benefit"
	}
	return "greedy"
}

// GCMode selects how the device schedules garbage collection.
type GCMode int

const (
	// GCForeground stalls the triggering write behind whole-victim
	// relocation — the classic opaque-device behavior (§2.4).
	GCForeground GCMode = iota
	// GCDeviceIncremental spreads relocation into small chunks per write,
	// the kindest plausible on-board controller (ablation A5).
	GCDeviceIncremental
)

// String implements fmt.Stringer.
func (m GCMode) String() string {
	if m == GCDeviceIncremental {
		return "device-incremental"
	}
	return "foreground"
}

// Config parameterizes the device.
type Config struct {
	Geom flash.Geometry
	Lat  flash.Latencies

	// OPFraction is the overprovisioned spare capacity as a fraction of the
	// usable (logical) capacity, matching the paper's "7-28% of the usable
	// capacity". Logical capacity = raw / (1 + OPFraction) - reserve.
	OPFraction float64

	// ReserveFraction is the minimal spare kept even at OPFraction = 0
	// (GC headroom and bad-block reserve). The paper's "no overprovisioning"
	// point still requires a sliver of spare for GC to make progress; the
	// default (3.5% of raw blocks) is calibrated so the E2 sweep reproduces
	// the paper's "15x with no overprovisioning". A floor of
	// 2*LUNs + GCLowWaterBlocks + 4 blocks guarantees GC can always find an
	// eligible victim (see maybeGC).
	ReserveFraction float64

	// GCPolicy selects the victim policy; default Greedy.
	GCPolicy GCPolicy

	// GCMode selects foreground (default) or device-incremental GC
	// scheduling.
	GCMode GCMode

	// GCChunkPages bounds relocation per host write in incremental mode.
	// Default 8.
	GCChunkPages int

	// GCLowWaterBlocks triggers foreground GC when the device's free page
	// slots (unwritten pages in open frontiers plus free blocks) fall to
	// this many blocks' worth. Default: 4.
	GCLowWaterBlocks int

	// HotColdSeparation directs GC copies to their own write frontiers
	// instead of mixing them with host writes. On by default (via New) to be
	// generous to the conventional baseline.
	HotColdSeparation bool

	// Streams enables the NVMe multi-stream writes directive (§2.3 of the
	// paper): hosts label related writes with a stream ID and the device
	// keeps each stream on its own erasure blocks. "Multi-streams are a
	// workaround to hosts' limited control over data placement in
	// conventional SSDs; the high hardware costs of conventional devices
	// remain." Default 1 (no streams).
	Streams int

	// TrimSupported makes Trim invalidate mapped pages, sparing GC from
	// copying dead data. On by default (via New).
	TrimSupported bool

	// StoreData keeps written payloads so reads can return them. Timing-only
	// experiments leave it off to save memory.
	StoreData bool

	// Endurance is the per-block erase budget passed to the flash layer;
	// 0 = unlimited.
	Endurance uint32

	// Recovery arms crash/recovery support: every host write stamps the
	// physical page's out-of-band area with (lpn, seq), and Recover can
	// rebuild the mapping table after flash.Device.CrashAt by scanning those
	// stamps. Costs O(total pages) memory in the flash layer, so fault
	// campaigns opt in per run. Payloads kept by StoreData do not survive
	// Recover (only the OOB metadata is journaled); integrity checking under
	// crashes goes through ReadMeta and the fault oracle instead.
	Recovery bool
}

// Errors returned by the device.
var (
	ErrOutOfSpace = errors.New("ftl: logical capacity exhausted")
	ErrOutOfRange = errors.New("ftl: logical page out of range")
	ErrUnmapped   = errors.New("ftl: read of unmapped logical page")
	ErrBadStream  = errors.New("ftl: stream ID out of range")
)

const unmapped = int64(-1)

// Device is a conventional SSD.
//
//simlint:shared conventional-FTL state is device-global by design: the L2P/P2L tables are LPN-indexed and free-block stealing crosses LUNs, so the parallel core keeps this baseline on a single shard
type Device struct {
	cfg   Config
	chip  *flash.Device
	geom  flash.Geometry
	pages int // pages per block, cached

	logicalPages int64

	l2p []int64 // logical page -> physical page, or unmapped
	p2l []int64 // physical page -> logical page, or unmapped

	valid      []int64 // per-block count of valid pages
	lastInval  []sim.Time
	freePerLUN [][]int // free block IDs per LUN
	freeBit    []bool  // per-block free flag, mirrors freePerLUN
	freeCount  int
	// freeSlots counts programmable pages device-wide: unwritten pages in
	// open frontier blocks plus whole free blocks. GC triggers on slots, not
	// blocks, because frontier slots are just as usable as free blocks.
	freeSlots      int64
	thresholdSlots int64
	hostFront      [][]frontier // [stream][lun] host write frontiers
	gcFront        []frontier   // per-LUN GC write frontier (if separated)
	rr             []int        // per-stream round-robin cursor over LUNs
	gcRR           int

	data map[int64][]byte // logical page -> payload (if StoreData)

	// Incremental GC cursor (GCDeviceIncremental only).
	gcVictim int
	gcCursor int64
	// gcRelocDone is the completion high-water mark of incremental
	// relocation copies — the crash-consistency barrier for the victim's
	// erase when Recovery is armed.
	gcRelocDone sim.Time

	// nextSeq is the monotone write sequence stamped into each programmed
	// page's OOB area when Config.Recovery is armed; the recovery scan's
	// newest-wins rule depends on it.
	nextSeq uint64

	counters stats.Counters
	gcRuns   uint64
	// lastGCStall records the duration of the most recent foreground GC
	// stall; exported via Stats for the scheduling experiments.
	lastGCStall sim.Time

	// Tenant blame bookkeeping (allocated by SetProbe when attribution is
	// armed, nil otherwise): pageOwner stamps each physical page with the
	// tenant that wrote it; deadBy counts, per block, how many of its dead
	// pages each tenant killed by overwrite/trim — the evidence GC uses to
	// name a victim block's dominant polluter. lastGCCulprit is the tenant
	// blamed for the most recent GC stall (SelfTenant when GC did not run
	// or no polluter stood out).
	pageOwner     []telemetry.TenantID
	deadBy        [][telemetry.MaxTenants]int32
	lastGCCulprit telemetry.TenantID
	// gcTopAdv is the largest single-victim time advance within the
	// current write's reclamation (maybeGC + any forceGC retry); the
	// culprit of that victim is the one the write's gc_stall blames.
	gcTopAdv sim.Time

	// Telemetry handles; all nil (zero-cost no-ops) without SetProbe.
	reg        *telemetry.Registry
	tr         *telemetry.Tracer
	attr       *telemetry.AttrSink
	fl         *telemetry.Flight
	mGCVictims *telemetry.Counter
	mGCCopies  *telemetry.Counter
	mGCForced  *telemetry.Counter
	hGCStall   *telemetry.Hist
}

type frontier struct {
	block int // open block, -1 if none
}

// New builds a device. Zero-value config fields get defaults: 3.5% reserve
// (with a floor guaranteeing GC progress), greedy GC, a 4-block free-slot
// low-water mark, one write stream, and hot/cold separation and trim as
// configured (NewDefault enables both).
func New(cfg Config) (*Device, error) {
	if err := cfg.Geom.Validate(); err != nil {
		return nil, err
	}
	if cfg.ReserveFraction == 0 {
		cfg.ReserveFraction = 0.035
	}
	if cfg.GCLowWaterBlocks == 0 {
		cfg.GCLowWaterBlocks = 4
	}
	if cfg.GCChunkPages <= 0 {
		cfg.GCChunkPages = 8
	}
	if cfg.OPFraction < 0 || cfg.OPFraction >= 1 {
		return nil, fmt.Errorf("ftl: OPFraction %v out of range [0,1)", cfg.OPFraction)
	}
	if cfg.Streams <= 0 {
		cfg.Streams = 1
	}

	raw := cfg.Geom.TotalPages()
	// The reserve floor guarantees GC progress: even if every open frontier
	// block (2 per LUN) is stuffed with invalid pages, enough invalid pages
	// remain in closed blocks for pickVictim to find an eligible victim
	// whenever free slots run low.
	minReserveBlocks := (cfg.Streams+1)*cfg.Geom.LUNs() + cfg.GCLowWaterBlocks + 4
	reserveBlocks := int64(cfg.ReserveFraction * float64(cfg.Geom.TotalBlocks()))
	if reserveBlocks < int64(minReserveBlocks) {
		reserveBlocks = int64(minReserveBlocks)
	}
	reserve := reserveBlocks * int64(cfg.Geom.PagesPerBlock)
	logical := int64(float64(raw)/(1+cfg.OPFraction)) - reserve
	if logical <= int64(cfg.Geom.PagesPerBlock) {
		return nil, fmt.Errorf("ftl: geometry too small for OP %.2f (raw %d pages, reserve %d)",
			cfg.OPFraction, raw, reserve)
	}

	chip := flash.New(cfg.Geom, cfg.Lat)
	chip.Endurance = cfg.Endurance

	d := &Device{
		cfg:          cfg,
		chip:         chip,
		geom:         cfg.Geom,
		pages:        cfg.Geom.PagesPerBlock,
		logicalPages: logical,
		l2p:          make([]int64, logical),
		p2l:          make([]int64, raw),
		valid:        make([]int64, cfg.Geom.TotalBlocks()),
		lastInval:    make([]sim.Time, cfg.Geom.TotalBlocks()),
		freePerLUN:   make([][]int, cfg.Geom.LUNs()),
		freeBit:      make([]bool, cfg.Geom.TotalBlocks()),
		hostFront:    make([][]frontier, cfg.Streams),
		gcFront:      make([]frontier, cfg.Geom.LUNs()),
		rr:           make([]int, cfg.Streams),
	}
	for i := range d.l2p {
		d.l2p[i] = unmapped
	}
	for i := range d.p2l {
		d.p2l[i] = unmapped
	}
	for b := 0; b < cfg.Geom.TotalBlocks(); b++ {
		lun := cfg.Geom.LUNOfBlock(b)
		d.freePerLUN[lun] = append(d.freePerLUN[lun], b)
		d.freeBit[b] = true
	}
	d.freeCount = cfg.Geom.TotalBlocks()
	for st := range d.hostFront {
		d.hostFront[st] = make([]frontier, cfg.Geom.LUNs())
		for i := range d.hostFront[st] {
			d.hostFront[st][i].block = -1
		}
	}
	for i := range d.gcFront {
		d.gcFront[i].block = -1
	}
	d.gcVictim = -1
	d.freeSlots = raw
	d.thresholdSlots = int64(cfg.GCLowWaterBlocks) * int64(cfg.Geom.PagesPerBlock)
	if cfg.StoreData {
		d.data = make(map[int64][]byte)
	}
	if cfg.Recovery {
		chip.EnableRecovery()
		d.nextSeq = 1
	}
	return d, nil
}

// NewDefault builds a device with the conventional-baseline defaults the
// experiments use: hot/cold separation and trim enabled.
func NewDefault(geom flash.Geometry, lat flash.Latencies, opFraction float64) (*Device, error) {
	return New(Config{
		Geom:              geom,
		Lat:               lat,
		OPFraction:        opFraction,
		HotColdSeparation: true,
		TrimSupported:     true,
	})
}

// SetProbe attaches telemetry to the FTL and its flash chip: GC work
// counters, a GC-stall histogram, gauges for write amplification and the
// free pool, and GC phase spans on the FTL trace track. Attach before
// driving I/O; a nil probe leaves every handle as a zero-cost no-op.
func (d *Device) SetProbe(p *telemetry.Probe) {
	d.chip.SetProbe(p)
	reg := p.Registry()
	d.reg = reg
	d.tr = p.Tracer()
	d.attr = p.Attribution()
	if d.attr != nil && d.pageOwner == nil {
		d.pageOwner = make([]telemetry.TenantID, d.geom.TotalPages())
		d.deadBy = make([][telemetry.MaxTenants]int32, d.geom.TotalBlocks())
		d.lastGCCulprit = telemetry.SelfTenant
	}
	d.mGCVictims = reg.Counter("ftl/gc/victims")
	d.mGCCopies = reg.Counter("ftl/gc/copy_pages")
	d.mGCForced = reg.Counter("ftl/gc/forced_runs")
	d.hGCStall = reg.Histogram("ftl/gc/stall")
	d.tr.NameProcess(telemetry.ProcFTL, "conventional FTL")
	d.tr.NameTrack(telemetry.ProcFTL, 0, "gc")
	reg.Gauge("ftl/write_amp", func(sim.Time) float64 { return d.counters.WriteAmp() })
	reg.Gauge("ftl/free_blocks", func(sim.Time) float64 { return float64(d.freeCount) })
	reg.Gauge("ftl/free_slots", func(sim.Time) float64 { return float64(d.freeSlots) })
	reg.Gauge("ftl/utilization", func(sim.Time) float64 { return d.Utilization() })
	d.fl = p.Flight()
	p.Heat().Register("ftl", d.heatSection)
}

// heatSection is the conventional FTL's heatmap source: the valid-page
// fraction of every erasure block, downsampled to a grid — the spatial
// picture GC victim selection acts on.
func (d *Device) heatSection(sim.Time) telemetry.DeviceHeat {
	fr := make([]float64, len(d.valid))
	for b := range d.valid {
		fr[b] = float64(d.valid[b]) / float64(d.pages)
	}
	cells, stride := telemetry.HeatCellsFrac(fr)
	return telemetry.DeviceHeat{Blocks: &telemetry.GridHeat{Cells: cells, CellBlocks: stride}}
}

// CapacityPages reports the logical (host-visible) capacity in pages.
func (d *Device) CapacityPages() int64 { return d.logicalPages }

// PageSize reports the page size in bytes.
func (d *Device) PageSize() int { return d.geom.PageSize }

// Counters returns the accounting counters.
func (d *Device) Counters() *stats.Counters { return &d.counters }

// GCRuns reports how many victim blocks GC has processed.
func (d *Device) GCRuns() uint64 { return d.gcRuns }

// LastGCStall reports the duration of the most recent foreground GC stall.
func (d *Device) LastGCStall() sim.Time { return d.lastGCStall }

// Flash exposes the underlying chip for wear inspection in tests/benches.
func (d *Device) Flash() *flash.Device { return d.chip }

// SetInjector attaches a fault injector to the underlying flash.
func (d *Device) SetInjector(inj *fault.Injector) { d.chip.SetInjector(inj) }

// DRAMFootprintBytes reports the on-board DRAM the FTL needs: 4 bytes per
// logical page for the mapping table (§2.2's estimate) plus 4 bytes per
// block of GC metadata.
func (d *Device) DRAMFootprintBytes() int64 {
	return 4*d.logicalPages + 4*int64(d.geom.TotalBlocks())
}

func (d *Device) ppn(block, page int) int64 {
	return int64(block)*int64(d.pages) + int64(page)
}

func (d *Device) blockOf(ppn int64) int { return int(ppn / int64(d.pages)) }
func (d *Device) pageOf(ppn int64) int  { return int(ppn % int64(d.pages)) }

// allocPage returns the next physical page on the rotating frontier set of
// the given stream, pulling fresh free blocks (least-erased first, for wear
// leveling) as frontiers fill. gc selects the GC frontier set when
// separation is on.
func (d *Device) allocPage(stream int, gc bool) (int64, error) {
	fronts, cursor := d.hostFront[stream], &d.rr[stream]
	if gc && d.cfg.HotColdSeparation {
		fronts, cursor = d.gcFront, &d.gcRR
	}
	luns := len(fronts)
	for try := 0; try < luns; try++ {
		lun := *cursor % luns
		*cursor++
		f := &fronts[lun]
		// A frontier that grew bad (failed program) or was sealed by crash
		// recovery no longer accepts programs; fall through and replace it.
		if f.block >= 0 && d.chip.WrittenPages(f.block) < d.pages &&
			!d.chip.IsBad(f.block) && !d.chip.IsSealed(f.block) {
			return d.ppn(f.block, d.chip.WrittenPages(f.block)), nil
		}
		if b, ok := d.takeFreeBlock(lun, gc); ok {
			f.block = b
			return d.ppn(b, 0), nil
		}
		// Full frontier and no replacement: drop the reference so the full
		// block becomes a GC candidate instead of being pinned forever.
		f.block = -1
	}
	return 0, ErrOutOfSpace
}

// gcReserveBlocks is the number of free blocks host allocation may never
// consume: they are kept for GC relocation so the collector can always make
// forward progress (without this, a burst of host writes can strand all
// remaining free space in host frontiers and deadlock reclamation).
const gcReserveBlocks = 2

// takeFreeBlock removes and returns the least-erased free block on lun,
// stealing from the richest LUN if lun is empty. Host allocation (gc ==
// false) may not dip into the GC reserve.
func (d *Device) takeFreeBlock(lun int, gc bool) (int, bool) {
	if !gc && d.freeCount <= gcReserveBlocks {
		return 0, false
	}
	list := d.freePerLUN[lun]
	if len(list) == 0 {
		richest, max := -1, 0
		for l, fl := range d.freePerLUN {
			if len(fl) > max {
				richest, max = l, len(fl)
			}
		}
		if richest < 0 {
			return 0, false
		}
		lun = richest
		list = d.freePerLUN[lun]
	}
	best := 0
	for i := 1; i < len(list); i++ {
		if d.chip.EraseCount(list[i]) < d.chip.EraseCount(list[best]) {
			best = i
		}
	}
	b := list[best]
	list[best] = list[len(list)-1]
	d.freePerLUN[lun] = list[:len(list)-1]
	d.freeBit[b] = false
	d.freeCount--
	return b, true
}

func (d *Device) invalidate(at sim.Time, ppn int64) {
	if ppn == unmapped {
		return
	}
	b := d.blockOf(ppn)
	d.p2l[ppn] = unmapped
	d.valid[b]--
	d.lastInval[b] = at
	if d.deadBy != nil {
		// The page died by host overwrite or trim; the worker doing that is
		// the polluter GC will later blame for cleaning this block.
		d.deadBy[b][clampOwner(d.attr.Worker())]++
	}
}

// clampOwner maps a worker tenant into the deadBy index space.
func clampOwner(t telemetry.TenantID) telemetry.TenantID {
	if t < 0 || t >= telemetry.MaxTenants {
		return 0
	}
	return t
}

// dominantPolluter names the tenant that killed the most pages in victim —
// the culprit a reclamation of that block blames. SelfTenant when nothing
// died there (erasing an untouched or wholly-valid block) or blame
// tracking is off. Ties break toward the lower tenant ID (deterministic).
func (d *Device) dominantPolluter(victim int) telemetry.TenantID {
	if d.deadBy == nil {
		return telemetry.SelfTenant
	}
	best, bestN := telemetry.SelfTenant, int32(0)
	for t := 0; t < telemetry.MaxTenants; t++ {
		if n := d.deadBy[victim][t]; n > bestN {
			best, bestN = telemetry.TenantID(t), n
		}
	}
	return best
}

// WritePage writes one logical page on stream 0. data may be nil for
// timing-only use. The returned time is when the write completes, including
// any foreground GC stall it triggered.
func (d *Device) WritePage(at sim.Time, lpn int64, data []byte) (sim.Time, error) {
	return d.WritePageStream(at, lpn, 0, data)
}

// WritePageStream writes one logical page with a multi-stream directive
// stream ID (§2.3): the page lands on the stream's own erasure blocks, so
// data the host says is related is erased together.
func (d *Device) WritePageStream(at sim.Time, lpn int64, stream int, data []byte) (sim.Time, error) {
	if lpn < 0 || lpn >= d.logicalPages {
		return at, ErrOutOfRange
	}
	if stream < 0 || stream >= len(d.hostFront) {
		return at, ErrBadStream
	}
	d.reg.Tick(at)
	// GC is parallel fan-out: its chip ops suspend the attribution sink
	// (maybeGC/forceGC suspend themselves) and the write is charged the
	// host-visible stall — exactly how far GC pushed its start time.
	gcFrom := at
	at = d.maybeGC(at)

	ppn, err := d.allocPage(stream, false)
	if err != nil {
		// This stream's frontiers are dry even though the device as a whole
		// passed the GC trigger: force a reclamation round and retry once.
		at = d.forceGC(at)
		if ppn, err = d.allocPage(stream, false); err != nil {
			return at, err
		}
	}
	d.attr.ChargeBlamed(telemetry.PhaseGCStall, at-gcFrom, d.lastGCCulprit)
	var done sim.Time
	for attempt := 0; ; attempt++ {
		block, page := d.blockOf(ppn), d.pageOf(ppn)
		done, err = d.chip.ProgramPage(at, block, page)
		if err == nil {
			if d.cfg.Recovery {
				d.chip.StampOOB(block, page, lpn, d.nextSeq)
				d.nextSeq++
			}
			break
		}
		if err != flash.ErrProgramFailed || attempt >= 3 {
			return at, err
		}
		// The program failed and retired the block mid-write: handle the
		// grown-bad block (strip it from the frontiers, migrate its valid
		// pages) and re-drive the write on a fresh frontier. The whole
		// detour is charged as GC stall — to the host it is exactly that:
		// the write stalled behind device housekeeping.
		retryFrom := at
		at = d.retireBlock(done, block)
		if ppn, err = d.allocPage(stream, false); err != nil {
			at = d.forceGC(at)
			if ppn, err = d.allocPage(stream, false); err != nil {
				return at, err
			}
		}
		d.attr.Charge(telemetry.PhaseGCStall, at-retryFrom)
	}
	d.freeSlots--
	d.invalidate(at, d.l2p[lpn])
	d.l2p[lpn] = ppn
	d.p2l[ppn] = lpn
	d.valid[d.blockOf(ppn)]++
	if d.pageOwner != nil {
		d.pageOwner[ppn] = clampOwner(d.attr.Worker())
	}

	if d.data != nil && data != nil {
		d.data[lpn] = data
	}
	d.counters.HostWritePages++
	d.counters.FlashProgramPages++
	d.counters.PCIeBytes += uint64(d.geom.PageSize)
	return done, nil
}

// ReadPage reads one logical page. The returned payload is nil unless the
// device stores data and the page was written with a payload.
func (d *Device) ReadPage(at sim.Time, lpn int64) (sim.Time, []byte, error) {
	if lpn < 0 || lpn >= d.logicalPages {
		return at, nil, ErrOutOfRange
	}
	ppn := d.l2p[lpn]
	if ppn == unmapped {
		return at, nil, ErrUnmapped
	}
	d.reg.Tick(at)
	done, err := d.chip.ReadPage(at, d.blockOf(ppn), d.pageOf(ppn))
	if err != nil {
		return at, nil, err
	}
	d.counters.HostReadPages++
	d.counters.FlashReadPages++
	d.counters.PCIeBytes += uint64(d.geom.PageSize)
	var payload []byte
	if d.data != nil {
		payload = d.data[lpn]
	}
	return done, payload, nil
}

// ReadMeta reads one logical page and returns the out-of-band stamp the
// physical page carries. The integrity harness verifies every read against
// the fault oracle with it: gotLPN must equal lpn and seq must be a sequence
// number the oracle considers acceptable. Requires Config.Recovery (the OOB
// area only exists then).
func (d *Device) ReadMeta(at sim.Time, lpn int64) (done sim.Time, gotLPN int64, seq uint64, err error) {
	if lpn < 0 || lpn >= d.logicalPages {
		return at, -1, 0, ErrOutOfRange
	}
	ppn := d.l2p[lpn]
	if ppn == unmapped {
		return at, -1, 0, ErrUnmapped
	}
	done, _, err = d.ReadPage(at, lpn)
	if err != nil {
		return done, -1, 0, err
	}
	gotLPN, seq = d.chip.OOB(d.blockOf(ppn), d.pageOf(ppn))
	return done, gotLPN, seq, nil
}

// Trim unmaps n logical pages starting at lpn. With TrimSupported it
// invalidates the physical pages so GC does not copy dead data; without it
// the call is a no-op (the pre-TRIM world many conventional deployments
// lived in, and an ablation knob for E5).
func (d *Device) Trim(at sim.Time, lpn, n int64) error {
	if lpn < 0 || lpn+n > d.logicalPages {
		return ErrOutOfRange
	}
	if !d.cfg.TrimSupported {
		return nil
	}
	for i := lpn; i < lpn+n; i++ {
		if d.l2p[i] != unmapped {
			d.invalidate(at, d.l2p[i])
			d.l2p[i] = unmapped
		}
		if d.data != nil {
			delete(d.data, i)
		}
	}
	return nil
}

// Utilization reports the fraction of logical pages currently mapped.
func (d *Device) Utilization() float64 {
	var mapped int64
	for _, p := range d.l2p {
		if p != unmapped {
			mapped++
		}
	}
	return float64(mapped) / float64(d.logicalPages)
}

// FreeBlocks reports the current free-block count.
func (d *Device) FreeBlocks() int { return d.freeCount }

// FreeSlots reports the number of programmable page slots device-wide.
func (d *Device) FreeSlots() int64 { return d.freeSlots }

// NextSeq reports the sequence number the next stamped write will carry —
// the integrity oracle resyncs to it after recovery.
func (d *Device) NextSeq() uint64 { return d.nextSeq }
