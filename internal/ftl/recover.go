package ftl

import (
	"errors"

	"blockhead/internal/fault"
	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
)

// Recover models a power loss at crashAt followed by a restart of the
// conventional FTL. The flash layer is truncated to its durable prefix
// (flash.Device.CrashAt), every piece of volatile FTL state — the mapping
// table, valid counts, frontiers, the free pool — is discarded, and the
// mapping is rebuilt the way a page-mapped FTL without a persisted journal
// has to: by reading every written page and parsing its out-of-band stamp,
// newest sequence number winning. That scan is the conventional design's
// recovery bill — O(written pages) timed flash reads — and the asymmetry
// against the ZNS stack's O(blocks) write-pointer rediscovery is exactly the
// mapping-persistence cost the paper's §2.2 attributes to device-side FTLs.
//
// After the scan, partially-written blocks are sealed (their torn frontiers
// refuse further programs until GC erases them), blocks truncated to zero
// are re-erased (their cells are indeterminate), and the free pool is
// rebuilt from fully-erased blocks. Requires Config.Recovery.
func (d *Device) Recover(crashAt sim.Time) (fault.RecoveryReport, error) {
	if !d.chip.RecoveryEnabled() {
		return fault.RecoveryReport{}, errors.New("ftl: recovery not armed (Config.Recovery)")
	}
	cs := d.chip.CrashAt(crashAt)
	rep := fault.RecoveryReport{
		Stack:      "conventional",
		CrashAt:    crashAt,
		LostPages:  cs.LostPages,
		TornBlocks: len(cs.Torn),
	}

	// Wipe volatile state. Payloads kept by StoreData are DRAM-resident in
	// this model and do not survive; integrity under crashes is checked via
	// ReadMeta and the OOB sequence stamps instead.
	for i := range d.l2p {
		d.l2p[i] = unmapped
	}
	for i := range d.p2l {
		d.p2l[i] = unmapped
	}
	for i := range d.valid {
		d.valid[i] = 0
	}
	for i := range d.freePerLUN {
		d.freePerLUN[i] = d.freePerLUN[i][:0]
	}
	for i := range d.freeBit {
		d.freeBit[i] = false
	}
	d.freeCount = 0
	for st := range d.hostFront {
		for i := range d.hostFront[st] {
			d.hostFront[st][i].block = -1
		}
	}
	for i := range d.gcFront {
		d.gcFront[i].block = -1
	}
	d.gcVictim, d.gcCursor = -1, 0
	if d.data != nil {
		d.data = make(map[int64][]byte)
	}

	// Recovery reads are maintenance traffic, not attributable host IO.
	d.attr.Suspend()
	defer d.attr.Resume()

	at := crashAt
	var maxSeq uint64
	torn := make(map[int]bool, len(cs.Torn))
	for _, b := range cs.Torn {
		torn[b] = true
	}
	for b := 0; b < d.geom.TotalBlocks(); b++ {
		w := d.chip.WrittenPages(b)
		if w > 0 {
			rep.ScannedBlocks++
		}
		for p := 0; p < w; p++ {
			done, err := d.chip.ReadPage(at, b, p)
			rep.ScannedPages++
			at = done
			if err != nil {
				// Uncorrectable scan read: the stamp is unreadable, so any
				// mapping this page held is lost in a detected way.
				rep.UnreadablePages++
				continue
			}
			lpn, seq := d.chip.OOB(b, p)
			if lpn < 0 {
				continue
			}
			if seq > maxSeq {
				maxSeq = seq
			}
			ppn := d.ppn(b, p)
			if old := d.l2p[lpn]; old != unmapped {
				_, oldSeq := d.chip.OOB(d.blockOf(old), d.pageOf(old))
				if seq <= oldSeq {
					continue
				}
				d.p2l[old] = unmapped
				d.valid[d.blockOf(old)]--
			}
			d.l2p[lpn] = ppn
			d.p2l[ppn] = lpn
			d.valid[b]++
		}
		switch {
		case d.chip.IsBad(b):
			// Retired: out of the free pool forever, but its valid pages
			// (rebuilt above) stay readable.
		case w == 0 && torn[b]:
			// Truncated to zero written pages: the cells are indeterminate,
			// so erase before trusting the block again.
			if done, err := d.chip.EraseBlock(at, b); err == nil {
				at = done
				rep.ErasedBlocks++
				d.counters.BlockErases++
				d.addFree(b)
			}
		case w == 0:
			d.addFree(b)
		case w < d.pages:
			// Torn write frontier: close it to further programs and let GC
			// reclaim it with an erase.
			d.chip.SealBlock(b)
			rep.SealedBlocks++
		}
	}
	d.nextSeq = maxSeq + 1
	d.freeSlots = int64(d.freeCount) * int64(d.pages)
	for _, p := range d.l2p {
		if p != unmapped {
			rep.RecoveredMappings++
		}
	}
	rep.RecoveredAt = at
	d.fl.Record(at, telemetry.FlightRecover, -1, "ftl", rep.RecoveredMappings)
	return rep, nil
}

// addFree returns a fully-erased block to the free pool.
func (d *Device) addFree(b int) {
	lun := d.geom.LUNOfBlock(b)
	d.freePerLUN[lun] = append(d.freePerLUN[lun], b)
	d.freeBit[b] = true
	d.freeCount++
}
