package fault

import (
	"reflect"
	"testing"
)

// TestProfileByName covers the lookup contract: empty means "none", every
// listed name resolves to itself, unknown names are rejected.
func TestProfileByName(t *testing.T) {
	p, ok := ProfileByName("")
	if !ok || p.Name != "none" {
		t.Fatalf(`ProfileByName("") = %v, %v; want the "none" profile`, p, ok)
	}
	for _, name := range ProfileNames() {
		p, ok := ProfileByName(name)
		if !ok || p.Name != name {
			t.Fatalf("ProfileByName(%q) = %v, %v", name, p, ok)
		}
	}
	if _, ok := ProfileByName("no-such-profile"); ok {
		t.Fatal("unknown profile name resolved")
	}
	if got := ProfileNames(); len(got) < 4 || got[0] != "none" {
		t.Fatalf("ProfileNames() = %v; want none first and at least 4 entries", got)
	}
}

// TestNoneProfileInert: the "none" profile injects nothing and draws no
// entropy, so arming it cannot perturb a run.
func TestNoneProfileInert(t *testing.T) {
	prof, _ := ProfileByName("none")
	inj := New(prof, 1)
	for k := 0; k < 1000; k++ {
		if r, unc := inj.ReadFaults(1.0); r != 0 || unc {
			t.Fatalf("none profile injected a read fault (retries=%d unc=%v)", r, unc)
		}
		if inj.ProgramFails(1.0) || inj.EraseFails(1.0) {
			t.Fatal("none profile injected a hard failure")
		}
	}
	if c := inj.Counts(); c != (Counts{}) {
		t.Fatalf("none profile counted faults: %+v", c)
	}
}

// TestSameSeedSameFaults is the determinism pin: two injectors with the same
// profile and seed produce identical decision streams, a different seed
// diverges.
func TestSameSeedSameFaults(t *testing.T) {
	prof, _ := ProfileByName("aggressive")
	type draw struct {
		retries int
		unc     bool
		prog    bool
		erase   bool
	}
	run := func(seed int64) []draw {
		inj := New(prof, seed)
		out := make([]draw, 0, 4000)
		for k := 0; k < 4000; k++ {
			wear := float64(k) / 4000
			var d draw
			d.retries, d.unc = inj.ReadFaults(wear)
			d.prog = inj.ProgramFails(wear)
			d.erase = inj.EraseFails(wear)
			out = append(out, d)
		}
		return out
	}
	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different fault streams")
	}
	if reflect.DeepEqual(a, run(43)) {
		t.Fatal("different seeds produced identical fault streams (suspicious)")
	}
}

// TestWearRaisesHardFailures: the wear multiplier must make hard failures
// more likely on worn blocks — the grown-bad-block process of §2.1.
func TestWearRaisesHardFailures(t *testing.T) {
	prof, _ := ProfileByName("wearout")
	const n = 200000
	fresh, worn := New(prof, 7), New(prof, 7)
	var freshFails, wornFails uint64
	for k := 0; k < n; k++ {
		if fresh.ProgramFails(0.0) {
			freshFails++
		}
		if worn.ProgramFails(1.0) {
			wornFails++
		}
	}
	if wornFails <= freshFails*10 {
		t.Fatalf("wear multiplier too weak: fresh=%d worn=%d program fails over %d draws",
			freshFails, wornFails, n)
	}
	if got := worn.Counts().ProgramFails; got != wornFails {
		t.Fatalf("Counts().ProgramFails = %d, want %d", got, wornFails)
	}
}

// TestReadRetryBudget: the retry count never exceeds the profile's budget,
// and exhausting it is reported as uncorrectable exactly once per read.
func TestReadRetryBudget(t *testing.T) {
	prof := Profile{Name: "hot", ReadTransientProb: 0.5, ReadRetries: 3}
	inj := New(prof, 99)
	var uncs uint64
	for k := 0; k < 20000; k++ {
		r, unc := inj.ReadFaults(0)
		if r > prof.ReadRetries {
			t.Fatalf("retries %d exceed budget %d", r, prof.ReadRetries)
		}
		if unc {
			if r != prof.ReadRetries {
				t.Fatalf("uncorrectable read reported %d retries, want the full budget %d",
					r, prof.ReadRetries)
			}
			uncs++
		}
	}
	if uncs == 0 {
		t.Fatal("p=0.5 with 3 retries never exhausted the budget over 20k reads")
	}
	if got := inj.Counts().Uncorrectable; got != uncs {
		t.Fatalf("Counts().Uncorrectable = %d, want %d", got, uncs)
	}
}

// TestNilInjector: every method on the nil *Injector is the disabled no-op —
// the device hot paths call them unconditionally.
func TestNilInjector(t *testing.T) {
	var inj *Injector
	if r, unc := inj.ReadFaults(1); r != 0 || unc {
		t.Fatal("nil injector injected a read fault")
	}
	if inj.ProgramFails(1) || inj.EraseFails(1) {
		t.Fatal("nil injector injected a hard failure")
	}
	if inj.Counts() != (Counts{}) || inj.Profile() != (Profile{}) {
		t.Fatal("nil injector reported non-zero state")
	}
	inj.SetProbe(nil) // must not panic
}

// TestRecoveryReportString pins the one-line summary format the reports and
// the fault-campaign determinism check depend on.
func TestRecoveryReportString(t *testing.T) {
	r := RecoveryReport{Stack: "conventional", CrashAt: 1_500_000, RecoveredAt: 2_500_000,
		LostPages: 3, TornBlocks: 1, ScannedBlocks: 10, ScannedPages: 640,
		RecoveredMappings: 600, SealedBlocks: 2, ErasedBlocks: 1}
	want := "conventional recovery: 1.000ms (crash@1.500ms, lost 3 in-flight pages, " +
		"1 torn blocks), scanned 640 pages/10 blocks, 600 mappings, sealed 2, erased 1"
	if got := r.String(); got != want {
		t.Fatalf("String() =\n  %s\nwant\n  %s", got, want)
	}
	if r.Duration() != 1_000_000 {
		t.Fatalf("Duration() = %d, want 1ms", r.Duration())
	}
}
