// Package fault is the seeded, deterministic fault-injection subsystem.
// It models the NAND error processes the paper's reliability argument rests
// on (§2.1: cells wear out; §2.2/§4: whoever owns the FTL owns media
// management): per-operation transient read failures recovered by read-retry
// escalation, and program/erase hard failures whose probability grows with a
// block's wear and which permanently retire the block (grown bad blocks).
//
// Every draw comes from one rand.Rand seeded from the run's seed, and the
// simulator core is single-threaded, so a fault campaign reproduces
// bit-for-bit: same seed, same profile, same faults at the same operations.
//
// The injector answers "does this operation fail?"; the device models
// (internal/flash and the layers above it) own the consequences — retry
// timing, bad-block remapping, zone state transitions. Power loss is not an
// injector concern: flash.Device.CrashAt truncates device state to the
// durable prefix and the stacks' Recover methods rebuild from it, reporting
// a RecoveryReport (defined here so every layer shares one shape).
package fault

import (
	"fmt"
	"math/rand"

	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
)

// Profile parameterizes the NAND error model. Probabilities are per
// operation; the wear multipliers add wear-proportional hard-failure
// probability, where wear is the block's consumed endurance fraction
// (erase count / endurance budget), so grown bad blocks accumulate as the
// device ages — the §2.1 failure mode.
type Profile struct {
	Name string

	// ReadTransientProb is the probability that one read sense fails and
	// must be retried with tuned thresholds. After ReadRetries failed
	// retries the read is uncorrectable (detected data loss, not silent
	// corruption — ECC catches it).
	ReadTransientProb float64
	ReadRetries       int

	// ProgramFailBase/ProgramWearMult give the per-program hard-failure
	// probability ProgramFailBase + ProgramWearMult*wear. A failed program
	// retires the block; pages programmed before the failure stay readable.
	ProgramFailBase float64
	ProgramWearMult float64

	// EraseFailBase/EraseWearMult give the per-erase hard-failure
	// probability. A failed erase retires the block.
	EraseFailBase float64
	EraseWearMult float64
}

// profiles are the named fault profiles, mildest first. "none" arms the
// fault plumbing (OOB stamping, crash tracking) without consuming any
// entropy or injecting anything — the control for overhead and for pure
// power-loss campaigns.
var profiles = []Profile{
	{Name: "none"},
	{
		Name:              "default",
		ReadTransientProb: 2e-3, ReadRetries: 8,
		ProgramFailBase: 2e-5, ProgramWearMult: 4e-4,
		EraseFailBase: 1e-5, EraseWearMult: 8e-4,
	},
	{
		Name:              "aggressive",
		ReadTransientProb: 8e-3, ReadRetries: 6,
		ProgramFailBase: 4e-4, ProgramWearMult: 4e-3,
		EraseFailBase: 2e-4, EraseWearMult: 8e-3,
	},
	{
		Name:              "wearout",
		ReadTransientProb: 1e-3, ReadRetries: 8,
		ProgramFailBase: 1e-6, ProgramWearMult: 2e-2,
		EraseFailBase: 1e-6, EraseWearMult: 4e-2,
	},
}

// Profiles returns the named profiles in a stable order.
func Profiles() []Profile { return append([]Profile(nil), profiles...) }

// ProfileByName looks a profile up; the empty name means "none".
func ProfileByName(name string) (Profile, bool) {
	if name == "" {
		return profiles[0], true
	}
	for _, p := range profiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// ProfileNames lists the valid -faults arguments.
func ProfileNames() []string {
	out := make([]string, len(profiles))
	for i, p := range profiles {
		out[i] = p.Name
	}
	return out
}

// Counts tallies injected faults.
type Counts struct {
	ReadTransients uint64 // failed senses recovered by a retry
	ReadRetryOps   uint64 // reads that needed at least one retry
	Uncorrectable  uint64 // reads that exhausted the retry budget
	ProgramFails   uint64
	EraseFails     uint64
}

// Injector draws fault decisions from one seeded stream. The nil *Injector
// is the disabled no-op on every method — device hot paths query it
// unconditionally — and profiles with a zero probability for an operation
// class skip the draw entirely, so "none" consumes no entropy and perturbs
// nothing.
//
//simlint:nilsafe
//simlint:shared one per-device RNG stream: draws must stay a single sequence in virtual-time order for bit-identical campaigns, so the parallel core funnels them through the owning shard
type Injector struct {
	prof   Profile
	rng    *rand.Rand
	counts Counts

	// Telemetry handles; all nil (zero-cost no-ops) without SetProbe.
	mTransient, mUncorr, mProgFail, mEraseFail *telemetry.Counter
}

// New builds an injector for the profile, seeded deterministically.
func New(prof Profile, seed int64) *Injector {
	return &Injector{prof: prof, rng: rand.New(rand.NewSource(seed))}
}

// SetProbe attaches fault counters to the registry; nil-safe.
func (i *Injector) SetProbe(p *telemetry.Probe) {
	if i == nil {
		return
	}
	reg := p.Registry()
	i.mTransient = reg.Counter("fault/read_transients")
	i.mUncorr = reg.Counter("fault/read_uncorrectable")
	i.mProgFail = reg.Counter("fault/program_fails")
	i.mEraseFail = reg.Counter("fault/erase_fails")
}

// Profile returns the injector's profile; nil-safe (zero Profile).
func (i *Injector) Profile() Profile {
	if i == nil {
		return Profile{}
	}
	return i.prof
}

// Counts returns the fault tallies so far; nil-safe.
func (i *Injector) Counts() Counts {
	if i == nil {
		return Counts{}
	}
	return i.counts
}

// ReadFaults decides one read's transient-failure outcome: how many retry
// senses it needed, and whether it exhausted the retry budget
// (uncorrectable). Nil-safe: no injector, no retries.
func (i *Injector) ReadFaults(wear float64) (retries int, uncorrectable bool) {
	if i == nil || i.prof.ReadTransientProb <= 0 {
		return 0, false
	}
	p := i.prof.ReadTransientProb
	for n := 0; n <= i.prof.ReadRetries; n++ {
		if i.rng.Float64() >= p {
			if n > 0 {
				i.counts.ReadTransients += uint64(n)
				i.counts.ReadRetryOps++
				i.mTransient.Add(uint64(n))
			}
			return n, false
		}
	}
	i.counts.ReadTransients += uint64(i.prof.ReadRetries)
	i.counts.ReadRetryOps++
	i.counts.Uncorrectable++
	i.mTransient.Add(uint64(i.prof.ReadRetries))
	i.mUncorr.Inc()
	return i.prof.ReadRetries, true
}

// ProgramFails decides whether one page program hard-fails; nil-safe.
func (i *Injector) ProgramFails(wear float64) bool {
	if i == nil {
		return false
	}
	p := i.prof.ProgramFailBase + i.prof.ProgramWearMult*wear
	if p <= 0 {
		return false
	}
	if i.rng.Float64() >= p {
		return false
	}
	i.counts.ProgramFails++
	i.mProgFail.Inc()
	return true
}

// EraseFails decides whether one block erase hard-fails; nil-safe.
func (i *Injector) EraseFails(wear float64) bool {
	if i == nil {
		return false
	}
	p := i.prof.EraseFailBase + i.prof.EraseWearMult*wear
	if p <= 0 {
		return false
	}
	if i.rng.Float64() >= p {
		return false
	}
	i.counts.EraseFails++
	i.mEraseFail.Inc()
	return true
}

// RecoveryReport is one stack's account of a power-loss recovery: what the
// crash cost and what the restart scan did. It lands in telemetry (flight
// recorder), test assertions, and the E-report output.
type RecoveryReport struct {
	Stack       string
	CrashAt     sim.Time
	RecoveredAt sim.Time

	// LostPages counts in-flight programs undone by the crash (their
	// completion would have been after the cut); TornBlocks counts blocks
	// truncated all the way back to zero written pages, which recovery
	// re-erases before reuse (their cells are in an indeterminate state).
	LostPages  int64
	TornBlocks int

	// Scan cost: ScannedBlocks/ScannedPages are the recovery reads issued
	// (the conventional FTL reads every written page's OOB area; the ZNS
	// device issues one confirming read per stripe block). UnreadablePages
	// are scan reads lost to uncorrectable errors.
	ScannedBlocks   int64
	ScannedPages    int64
	UnreadablePages int64

	// RecoveredMappings counts logical pages whose mapping survived;
	// SealedBlocks (conventional) counts torn write frontiers closed to
	// further programs; ErasedBlocks counts blocks re-erased during
	// recovery.
	RecoveredMappings int64
	SealedBlocks      int
	ErasedBlocks      int

	// Zone census after write-pointer rediscovery (ZNS stacks only).
	ZonesEmpty, ZonesFull, ZonesReadOnly, ZonesOffline int
}

// Duration is the virtual time the recovery took.
func (r RecoveryReport) Duration() sim.Time { return r.RecoveredAt - r.CrashAt }

// String renders the one-line summary used in reports and test output.
func (r RecoveryReport) String() string {
	return fmt.Sprintf(
		"%s recovery: %.3fms (crash@%.3fms, lost %d in-flight pages, %d torn blocks), scanned %d pages/%d blocks, %d mappings, sealed %d, erased %d",
		r.Stack, r.Duration().Millis(), r.CrashAt.Millis(), r.LostPages, r.TornBlocks,
		r.ScannedPages, r.ScannedBlocks, r.RecoveredMappings, r.SealedBlocks, r.ErasedBlocks)
}
