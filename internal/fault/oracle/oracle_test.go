package oracle

import (
	"errors"
	"testing"

	"blockhead/internal/flash"
)

var errRead = errors.New("read failed")

// TestLiveChecks covers the no-crash contract: a live read must return
// exactly the newest acknowledged version; anything else is a violation.
func TestLiveChecks(t *testing.T) {
	o := New(4)
	o.RecordWrite(0, 10, 20) // seq 1
	o.RecordWrite(0, 30, 40) // seq 2
	o.RecordWrite(1, 50, 60) // seq 3

	if !o.CheckLive(0, 0, 2, nil) {
		t.Fatal("newest version rejected")
	}
	if o.CheckLive(0, 0, 1, nil) {
		t.Fatal("stale version accepted live")
	}
	if o.CheckLive(1, 0, 3, nil) {
		t.Fatal("cross-mapped lpn accepted")
	}
	if o.CheckLive(2, 2, 9, nil) {
		t.Fatal("data fabricated for never-written lpn accepted")
	}
	if !o.CheckLive(2, 0, 0, errRead) {
		t.Fatal("read error on never-written lpn must be acceptable")
	}
	if o.CheckLive(1, 0, 0, errRead) {
		t.Fatal("read error on live lpn accepted")
	}
	if got := o.Violations(); got != 4 {
		t.Fatalf("Violations() = %d, want 4 (details: %v)", got, o.Details())
	}
}

// TestUncorrectableIsDetectedLoss: ECC-exhausted reads are honest failures,
// counted separately, never violations.
func TestUncorrectableIsDetectedLoss(t *testing.T) {
	o := New(1)
	o.RecordWrite(0, 0, 5)
	if !o.CheckLive(0, 0, 0, flash.ErrUncorrectable) {
		t.Fatal("uncorrectable read treated as violation")
	}
	o.Crash(10)
	if !o.CheckRecovered(0, 0, 0, flash.ErrUncorrectable) {
		t.Fatal("uncorrectable recovery read treated as violation")
	}
	if o.Violations() != 0 || o.LostReads() != 2 {
		t.Fatalf("violations=%d lostReads=%d, want 0 and 2", o.Violations(), o.LostReads())
	}
}

// TestTrim: a trimmed page must read as dead live, but durable copies may
// legally resurrect across a crash (trims are host-DRAM metadata).
func TestTrim(t *testing.T) {
	o := New(1)
	o.RecordWrite(0, 0, 5) // seq 1
	o.RecordTrim(0)
	if o.CheckLive(0, 0, 1, nil) {
		t.Fatal("trimmed page returning data must be a violation")
	}
	o = New(1)
	o.RecordWrite(0, 0, 5) // seq 1
	o.RecordTrim(0)
	o.Crash(10)
	if !o.CheckRecovered(0, 0, 1, nil) {
		t.Fatal("durable copy of a trimmed page resurrecting after crash must be legal")
	}
	if !o.CheckLive(0, 0, 1, nil) {
		t.Fatal("after resurrection the copy is live again")
	}
}

// TestCrashDurableWinner: a page with no write in flight at the crash must
// recover to exactly its durable winner — older versions and losses are
// violations.
func TestCrashDurableWinner(t *testing.T) {
	o := New(3)
	o.RecordWrite(0, 0, 10)  // seq 1
	o.RecordWrite(0, 20, 30) // seq 2, durable
	o.RecordWrite(1, 40, 50) // seq 3, durable
	o.Crash(100)

	if o.CheckRecovered(0, 0, 1, nil) {
		t.Fatal("stale resurrection accepted for settled page")
	}
	o = New(3)
	o.RecordWrite(0, 0, 10)
	o.RecordWrite(0, 20, 30)
	o.Crash(100)
	if o.CheckRecovered(0, 0, 0, errRead) {
		t.Fatal("loss of a settled durable page accepted")
	}
	o = New(3)
	o.RecordWrite(0, 0, 10)
	o.RecordWrite(0, 20, 30)
	o.Crash(100)
	if !o.CheckRecovered(0, 0, 2, nil) {
		t.Fatal("durable winner rejected")
	}
	if !o.CheckRecovered(1, 0, 0, errRead) {
		t.Fatal("nothing-durable page recovering to nothing rejected")
	}
	if o.CheckRecovered(2, 2, 7, nil) {
		t.Fatal("fabricated recovery accepted")
	}
}

// TestCrashInFlight: a page whose write was still in flight at the crash may
// recover to the in-flight version (its program raced the failure and won),
// any durable predecessor, or nothing — but never to a version that was
// never acknowledged.
func TestCrashInFlight(t *testing.T) {
	build := func() *Oracle {
		o := New(1)
		o.RecordWrite(0, 0, 10)   // seq 1, durable
		o.RecordWrite(0, 90, 110) // seq 2, in flight at t=100
		o.Crash(100)
		return o
	}
	if !build().CheckRecovered(0, 0, 2, nil) {
		t.Fatal("in-flight write that reached the media rejected")
	}
	if !build().CheckRecovered(0, 0, 1, nil) {
		t.Fatal("durable predecessor rejected for in-flight page")
	}
	if !build().CheckRecovered(0, 0, 0, errRead) {
		t.Fatal("total loss rejected for in-flight page (GC may have erased the winner)")
	}
	if build().CheckRecovered(0, 0, 9, nil) {
		t.Fatal("never-acknowledged version accepted")
	}
}

// TestCollapseAndResync: CheckRecovered collapses each page's history to the
// observed survivor, so live checking resumes exactly; Resync aligns the
// sequence counter with the stack's post-scan value.
func TestCollapseAndResync(t *testing.T) {
	o := New(1)
	o.RecordWrite(0, 0, 10)   // seq 1
	o.RecordWrite(0, 90, 110) // seq 2, in flight at crash
	o.Crash(100)
	if !o.CheckRecovered(0, 0, 1, nil) {
		t.Fatal("recovery to durable predecessor rejected")
	}
	o.Resync(2) // stack rescanned: max seq 1 observed, next is 2
	if !o.CheckLive(0, 0, 1, nil) {
		t.Fatal("live check after collapse rejected the survivor")
	}
	o.RecordWrite(0, 200, 210) // must get seq 2
	if !o.CheckLive(0, 0, 2, nil) {
		t.Fatal("post-resync write did not take the stack's next seq")
	}
	if o.Violations() != 0 {
		t.Fatalf("unexpected violations: %v", o.Details())
	}
}

// TestNilOracle: the nil *Oracle no-ops on every method so harnesses thread
// it unconditionally, and the no-op path never allocates.
func TestNilOracle(t *testing.T) {
	var o *Oracle
	o.RecordWrite(0, 0, 1)
	o.RecordTrim(0)
	o.Crash(5)
	o.Resync(9)
	if !o.CheckLive(0, 0, 0, nil) || !o.CheckRecovered(0, 0, 0, nil) {
		t.Fatal("nil oracle rejected a check")
	}
	if o.Violations() != 0 || o.LostReads() != 0 || o.Details() != nil {
		t.Fatal("nil oracle reported state")
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		o.RecordWrite(0, 0, 1)
		o.CheckLive(0, 0, 0, nil)
		_ = o.Violations()
	}); allocs != 0 {
		t.Fatalf("nil oracle allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestDetailsCapped: violation detail retention is bounded; the count keeps
// going.
func TestDetailsCapped(t *testing.T) {
	o := New(1)
	for k := 0; k < maxDetails+10; k++ {
		o.CheckLive(0, 0, 1, nil) // never written: every data return violates
	}
	if got := len(o.Details()); got != maxDetails {
		t.Fatalf("details length = %d, want capped at %d", got, maxDetails)
	}
	if got := o.Violations(); got != uint64(maxDetails+10) {
		t.Fatalf("Violations() = %d, want %d", got, maxDetails+10)
	}
}
