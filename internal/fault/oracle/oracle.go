// Package oracle is the differential data-integrity harness's shadow map.
// It records every logical write either FTL stack acknowledges — mirroring
// the monotone sequence numbers the stacks stamp out-of-band — and then
// checks every subsequent ReadMeta against what must be true:
//
//   - Live (no crash): a read of lpn must return exactly the newest
//     acknowledged version.
//   - Across a power loss at time T: writes whose program completed at or
//     before T are durable; writes still in flight may or may not have
//     reached the media. A logical page with no write in flight at T must
//     recover to exactly its durable winner. A page with an in-flight write
//     may legally recover to any acknowledged version — the in-flight write
//     itself if its program raced the failure and won, any durable
//     predecessor, or nothing at all (the in-flight write had already
//     invalidated the winner, so garbage collection may have erased it
//     before the crash).
//
// Uncorrectable reads are detected losses, counted separately from
// violations: the stack reported them honestly rather than returning wrong
// data. After a crash, CheckRecovered collapses the history of each page to
// the version the stack actually preserved, so live checking resumes
// exactly; call it for every page (VerifyAll-style) before resuming writes,
// then Resync with the stack's next sequence number.
//
// The oracle is pure host-side bookkeeping: no simulated time, no
// attribution, no allocation on the check paths.
package oracle

import (
	"errors"
	"fmt"

	"blockhead/internal/flash"
	"blockhead/internal/sim"
)

// rec is one acknowledged write of a logical page.
type rec struct {
	seq    uint64
	issued sim.Time
	done   sim.Time
}

// maxDetails bounds how many violation descriptions are retained verbatim.
const maxDetails = 16

// Oracle shadow-maps one FTL stack. The nil *Oracle no-ops on every method,
// so harnesses can thread it unconditionally.
//
//simlint:nilsafe
type Oracle struct {
	hist     [][]rec // per-lpn acknowledged writes, oldest first
	trimmed  []bool  // host unmapped it; durable copies may still resurrect
	inFlight []bool  // had a write in flight at the last crash
	durable  []int   // per-lpn count of writes durable at the last crash
	seq      uint64  // next sequence number the stack will assign
	crashed  bool

	violations uint64
	lostReads  uint64
	details    []string
}

// New builds an oracle for a stack with the given logical capacity.
func New(logicalPages int64) *Oracle {
	return &Oracle{
		hist:     make([][]rec, logicalPages),
		trimmed:  make([]bool, logicalPages),
		inFlight: make([]bool, logicalPages),
		durable:  make([]int, logicalPages),
		seq:      1,
	}
}

// RecordWrite mirrors one acknowledged write: the stack stamped it with the
// oracle's current sequence number (both count monotonically from the same
// origin), issued at issued and durable at done.
func (o *Oracle) RecordWrite(lpn int64, issued, done sim.Time) {
	if o == nil {
		return
	}
	o.hist[lpn] = append(o.hist[lpn], rec{seq: o.seq, issued: issued, done: done})
	o.trimmed[lpn] = false
	o.seq++
}

// RecordTrim mirrors a host trim. The history is kept: trims are host-DRAM
// metadata in both stacks, so a crash may legally resurrect durable copies.
func (o *Oracle) RecordTrim(lpn int64) {
	if o == nil {
		return
	}
	o.trimmed[lpn] = true
}

// CheckLive verifies a ReadMeta result during normal operation: the read
// must return exactly the newest acknowledged version. Reports whether the
// result was acceptable.
func (o *Oracle) CheckLive(lpn int64, gotLPN int64, seq uint64, err error) bool {
	if o == nil {
		return true
	}
	h := o.hist[lpn]
	live := len(h) > 0 && !o.trimmed[lpn]
	if errors.Is(err, flash.ErrUncorrectable) {
		o.lostReads++
		return true // detected loss, honestly reported
	}
	if err != nil {
		if !live {
			return true
		}
		return o.fail("live lpn %d: read error %v, expected seq %d", lpn, err, h[len(h)-1].seq)
	}
	if !live {
		return o.fail("dead lpn %d: read returned data (lpn %d seq %d)", lpn, gotLPN, seq)
	}
	if want := h[len(h)-1].seq; gotLPN != lpn || seq != want {
		return o.fail("live lpn %d: got (lpn %d, seq %d), want (lpn %d, seq %d)",
			lpn, gotLPN, seq, lpn, want)
	}
	return true
}

// Crash applies a power loss at crashT to the shadow map: acknowledged
// writes whose program had not completed may or may not have reached the
// media, and pages that had one in flight are marked — their durable winner
// may legally have been garbage-collected away. The full history is kept
// (with a per-page durable watermark) so an in-flight write that raced the
// failure and won is still recognised at recovery.
func (o *Oracle) Crash(crashT sim.Time) {
	if o == nil {
		return
	}
	o.crashed = true
	for lpn := range o.hist {
		h := o.hist[lpn]
		n := len(h)
		for n > 0 && h[n-1].done > crashT {
			n--
		}
		o.inFlight[lpn] = n < len(h)
		o.durable[lpn] = n
	}
}

// CheckRecovered verifies a post-recovery ReadMeta result and collapses the
// page's history to the version the stack actually preserved, so live
// checking can resume. Call it for every logical page after recovery, then
// Resync. Reports whether the result was acceptable.
func (o *Oracle) CheckRecovered(lpn int64, gotLPN int64, seq uint64, err error) bool {
	if o == nil {
		return true
	}
	h := o.hist[lpn]
	durable := len(h)
	if o.crashed {
		durable = o.durable[lpn]
	}
	if errors.Is(err, flash.ErrUncorrectable) {
		o.lostReads++
		return true
	}
	if err != nil {
		// Nothing recovered for this page. Legal when nothing durable
		// existed, the page was trimmed (trims may persist), or an
		// in-flight write had invalidated the winner before the crash.
		if durable == 0 || o.trimmed[lpn] || o.inFlight[lpn] {
			o.hist[lpn] = h[:0]
			o.trimmed[lpn] = false
			return true
		}
		return o.fail("recovery lost lpn %d: error %v, expected durable seq %d",
			lpn, err, h[durable-1].seq)
	}
	if len(h) == 0 {
		return o.fail("recovery fabricated lpn %d: got (lpn %d, seq %d), nothing durable",
			lpn, gotLPN, seq)
	}
	if gotLPN != lpn {
		return o.fail("recovery cross-mapped lpn %d: page is stamped lpn %d (seq %d)",
			lpn, gotLPN, seq)
	}
	idx := -1
	for i := len(h) - 1; i >= 0; i-- {
		if h[i].seq == seq {
			idx = i
			break
		}
	}
	if idx < 0 {
		return o.fail("recovery returned unknown version for lpn %d: seq %d never acknowledged", lpn, seq)
	}
	if !o.inFlight[lpn] && !o.trimmed[lpn] && idx != durable-1 {
		return o.fail("recovery resurrected stale lpn %d: got seq %d, want winner seq %d",
			lpn, seq, h[durable-1].seq)
	}
	o.hist[lpn] = h[:idx+1]
	o.trimmed[lpn] = false
	return true
}

// Resync ends the crash epoch: the stack reassigns sequence numbers from
// nextSeq (its recovery scan's max observed + 1), and the oracle follows.
func (o *Oracle) Resync(nextSeq uint64) {
	if o == nil {
		return
	}
	o.seq = nextSeq
	o.crashed = false
	for i := range o.inFlight {
		o.inFlight[i] = false
	}
}

// fail records one violation (always returns false for use in checks).
func (o *Oracle) fail(format string, args ...any) bool {
	o.violations++
	if len(o.details) < maxDetails {
		o.details = append(o.details, fmt.Sprintf(format, args...))
	}
	return false
}

// Violations reports the total integrity violations observed; nil-safe.
func (o *Oracle) Violations() uint64 {
	if o == nil {
		return 0
	}
	return o.violations
}

// LostReads reports detected (honestly surfaced) losses: uncorrectable
// reads and recovery-time unreadable pages; nil-safe.
func (o *Oracle) LostReads() uint64 {
	if o == nil {
		return 0
	}
	return o.lostReads
}

// Details returns up to the first 16 violation descriptions; nil-safe.
func (o *Oracle) Details() []string {
	if o == nil {
		return nil
	}
	return o.details
}
