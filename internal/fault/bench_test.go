package fault

import (
	"testing"
)

// TestNilInjectorZeroAllocs pins the disabled path: devices query the
// injector on every read/program/erase, so the nil no-op must never allocate.
func TestNilInjectorZeroAllocs(t *testing.T) {
	var inj *Injector
	if allocs := testing.AllocsPerRun(1000, func() {
		inj.ReadFaults(0.5)
		inj.ProgramFails(0.5)
		inj.EraseFails(0.5)
		_ = inj.Counts()
	}); allocs != 0 {
		t.Fatalf("nil injector allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestLiveInjectorZeroAllocs pins the enabled path too: fault draws happen
// on every flash operation, so even live injection must stay allocation-free.
func TestLiveInjectorZeroAllocs(t *testing.T) {
	prof, _ := ProfileByName("aggressive")
	inj := New(prof, 42)
	if allocs := testing.AllocsPerRun(1000, func() {
		inj.ReadFaults(0.5)
		inj.ProgramFails(0.5)
		inj.EraseFails(0.5)
	}); allocs != 0 {
		t.Fatalf("live injector allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkReadFaults measures the per-read fault draw under the default
// profile (one Float64 per sense).
func BenchmarkReadFaults(b *testing.B) {
	prof, _ := ProfileByName("default")
	inj := New(prof, 42)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		inj.ReadFaults(0.3)
	}
}

// BenchmarkProbeDisabledFaultDraw measures the disabled path devices pay
// when no fault campaign is armed (named to ride `make bench-telemetry`'s
// ProbeDisabled filter alongside the other nil-instrument pins).
func BenchmarkProbeDisabledFaultDraw(b *testing.B) {
	var inj *Injector
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		inj.ReadFaults(0.3)
	}
}
