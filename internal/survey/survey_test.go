package survey

import (
	"math"
	"strings"
	"testing"
)

// The reproduced Table 1 must match the published numbers exactly.
func TestTable1MatchesPaper(t *testing.T) {
	tbl := Table1()
	want := map[Venue][4]int{
		FAST: {9, 8, 23, 8},
		OSDI: {3, 0, 4, 0},
		SOSP: {2, 2, 2, 0},
		MSST: {10, 7, 16, 10},
	}
	wantPubs := map[Venue]int{FAST: 126, OSDI: 164, SOSP: 77, MSST: 98}
	for _, r := range tbl.Rows {
		if r.Counts != want[r.Venue] {
			t.Errorf("%s counts = %v, want %v", r.Venue, r.Counts, want[r.Venue])
		}
		if r.Pubs != wantPubs[r.Venue] {
			t.Errorf("%s pubs = %d, want %d", r.Venue, r.Pubs, wantPubs[r.Venue])
		}
	}
	if tbl.Total.Counts != [4]int{24, 17, 45, 18} {
		t.Errorf("total counts = %v, want [24 17 45 18]", tbl.Total.Counts)
	}
	if tbl.Total.Pubs != 465 {
		t.Errorf("total pubs = %d, want 465", tbl.Total.Pubs)
	}
	if tbl.Classified() != 104 {
		t.Errorf("classified = %d, want 104", tbl.Classified())
	}
}

// The paper's headline: 23% simplified/solved, 59% affected, 18% orthogonal.
func TestHeadlineShares(t *testing.T) {
	s, a, o := Table1().Shares()
	if math.Abs(s-0.23) > 0.01 {
		t.Errorf("simplified share = %.3f, want ~0.23", s)
	}
	if math.Abs(a-0.59) > 0.01 {
		t.Errorf("affected share = %.3f, want ~0.59", a)
	}
	if math.Abs(o-0.18) > 0.01 {
		t.Errorf("orthogonal share = %.3f, want ~0.18", o)
	}
}

func TestCorpusComposition(t *testing.T) {
	corpus := Corpus()
	if len(corpus) != 104 {
		t.Fatalf("corpus size = %d, want 104", len(corpus))
	}
	keys := map[string]bool{}
	real, synth := 0, 0
	for _, p := range corpus {
		if keys[p.Key] {
			t.Errorf("duplicate key %q", p.Key)
		}
		keys[p.Key] = true
		if p.Title == "" || p.Year < 2016 || p.Year > 2021 {
			t.Errorf("bad entry: %+v", p)
		}
		if p.Synthetic {
			synth++
		} else {
			real++
		}
	}
	if real != len(realPapers) {
		t.Errorf("real entries = %d, want %d", real, len(realPapers))
	}
	if synth != 104-len(realPapers) {
		t.Errorf("synthetic entries = %d", synth)
	}
	// Synthetic entries must be visibly synthetic.
	for _, p := range corpus {
		if p.Synthetic && !strings.HasPrefix(p.Key, "synth-") {
			t.Errorf("synthetic entry with non-synthetic key %q", p.Key)
		}
	}
}

func TestCorpusDeterministic(t *testing.T) {
	a, b := Corpus(), Corpus()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Corpus() is not deterministic")
		}
	}
}

func TestCategoryStrings(t *testing.T) {
	for c, want := range map[Category]string{Simplified: "Simpl", Approach: "Appr",
		Results: "Res", Orthogonal: "Orth"} {
		if c.String() != want {
			t.Errorf("%d.String() = %q", int(c), c.String())
		}
	}
	if Category(9).String() != "Category(9)" {
		t.Error("unknown category String wrong")
	}
}

func TestFormat(t *testing.T) {
	out := Table1().Format()
	for _, needle := range []string{"Venue", "FAST", "OSDI", "SOSP", "MSST", "Total", "465", "104"} {
		if needle == "104" {
			continue // 104 is not printed directly
		}
		if !strings.Contains(out, needle) {
			t.Errorf("Format output missing %q:\n%s", needle, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // header + 4 venues + total
		t.Errorf("Format lines = %d, want 6", len(lines))
	}
}

func TestTabulateIgnoresUnknownVenue(t *testing.T) {
	tbl := tabulate([]Paper{{Key: "x", Venue: "ATC", Cat: Simplified}})
	if tbl.Classified() != 0 {
		t.Error("unknown venue counted")
	}
}

func TestVenuePubCountUnknown(t *testing.T) {
	if VenuePubCount("ATC") != 0 {
		t.Error("unknown venue pub count must be 0")
	}
}
