// Package survey reproduces the paper's §3 literature study and Table 1:
// 465 papers published 2016-2021 at FAST, OSDI, SOSP, and MSST, of which
// 104 feature flash SSDs prominently, classified into four categories of
// ZNS impact.
//
// The authors did not release their corpus; only the aggregate counts in
// Table 1 are published. This package therefore carries a reconstructed
// corpus: the ~20 classified papers the text itself cites with enough
// context to place them (Synthetic == false), plus clearly-marked synthetic
// stand-in entries that bring each (venue, category) cell to the published
// count. The taxonomy pipeline — classify, aggregate, render — runs over
// this corpus and regenerates Table 1 exactly.
//
// One inconsistency in the source is handled by omission: the paper offers
// "Stash in a Flash" (OSDI '18) as its example of an Orthogonal paper, but
// Table 1 reports zero Orthogonal papers at OSDI. We leave it out rather
// than guess.
package survey

import (
	"fmt"
	"sort"
	"strings"
)

// Category is the ZNS-impact class from §3.
type Category int

const (
	// Simplified: the paper's main problem is solved or simplified by ZNS.
	Simplified Category = iota
	// Approach: the paper's approach to the problem may change with ZNS.
	Approach
	// Results: the results of the research or evaluation may change.
	Results
	// Orthogonal: the problem is orthogonal to ZNS.
	Orthogonal
	numCategories
)

// String implements fmt.Stringer using the paper's column headers.
func (c Category) String() string {
	switch c {
	case Simplified:
		return "Simpl"
	case Approach:
		return "Appr"
	case Results:
		return "Res"
	case Orthogonal:
		return "Orth"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Venue is one of the surveyed conferences.
type Venue string

// The surveyed venues.
const (
	FAST Venue = "FAST"
	OSDI Venue = "OSDI"
	SOSP Venue = "SOSP"
	MSST Venue = "MSST"
)

// Venues lists the surveyed venues in Table 1's row order.
func Venues() []Venue { return []Venue{FAST, OSDI, SOSP, MSST} }

// VenuePubCount reports the total publications per venue over the survey's
// five years (the #Pubs column).
func VenuePubCount(v Venue) int {
	switch v {
	case FAST:
		return 126
	case OSDI:
		return 164
	case SOSP:
		return 77
	case MSST:
		return 98
	default:
		return 0
	}
}

// Paper is one classified corpus entry.
type Paper struct {
	Key       string // citation-style key
	Title     string
	Venue     Venue
	Year      int
	Cat       Category
	Synthetic bool // stand-in entry matching published aggregate counts
}

// published per-cell counts from Table 1, indexed [venue][category].
var published = map[Venue][4]int{
	FAST: {9, 8, 23, 8},
	OSDI: {3, 0, 4, 0},
	SOSP: {2, 2, 2, 0},
	MSST: {10, 7, 16, 10},
}

// realPapers are the classified papers the text cites with enough context
// to place in a cell.
var realPapers = []Paper{
	{"yan17tinytail", "Tiny-tail flash: near-perfect elimination of garbage collection tail latencies in NAND SSDs", FAST, 2017, Simplified, false},
	{"chen16ordermerge", "OrderMergeDedup: Efficient, Failure-Consistent Deduplication on Flash", FAST, 2016, Simplified, false},
	{"liu18pen", "PEN: Design and Evaluation of Partial-Erase for 3D NAND-Based High Density SSDs", FAST, 2018, Simplified, false},
	{"zhang20parallelftl", "Scalable Parallel Flash Firmware for Many-core Architectures", FAST, 2020, Simplified, false},
	{"li18femu", "The CASE of FEMU: Cheap, Accurate, Scalable and Extensible Flash Emulator", FAST, 2018, Simplified, false},
	{"shen17didacache", "DIDACache: A Deep Integration of Device and Application for Flash Based Key-Value Caching", FAST, 2017, Approach, false},
	{"gunawi18failslow", "Fail-Slow at Scale: Evidence of Hardware Performance Faults in Large Production Systems", FAST, 2018, Results, false},
	{"schroeder16reliability", "Flash Reliability in Production: The Expected and the Unexpected", FAST, 2016, Results, false},
	{"maneas20ssdstudy", "A Study of SSD Reliability in Large Scale Enterprise Storage Deployments", FAST, 2020, Results, false},
	{"lu16wisckey", "WiscKey: Separating Keys from Values in SSD-Conscious Storage", FAST, 2016, Results, false},

	{"hao20linnos", "LinnOS: Predictability on Unpredictable Flash Storage with a Light Neural Network", OSDI, 2020, Simplified, false},
	{"berg20cachelib", "The CacheLib Caching Engine: Design and Experiences at Scale", OSDI, 2020, Results, false},

	{"zhou17lxssd", "LX-SSD: Enhancing the Lifespan of NAND Flash-based Memory via Recycling Invalid Pages", MSST, 2017, Simplified, false},
	{"lee16nvmcoop", "Reducing Write Amplification of Flash Storage through Cooperative Data Management with NVM", MSST, 2016, Simplified, false},
	{"li20bandwidthftl", "Maximizing Bandwidth Management FTL Based on Read and Write Asymmetry of Flash Memory", MSST, 2020, Simplified, false},
	{"shafaei17cleaning", "Near-Optimal Offline Cleaning for Flash-Based SSDs", MSST, 2017, Simplified, false},
	{"cui16latency", "Exploiting latency variation for access conflict reduction of NAND flash memory", MSST, 2016, Approach, false},
	{"han20lightkv", "LightKV: A Cross Media Key Value Store with Persistent Memory to Cut Long Tail Latency", MSST, 2020, Results, false},
}

// syntheticTopics provide varied, clearly-generated titles per category.
var syntheticTopics = [4][]string{
	Simplified: {
		"Mitigating Garbage Collection Interference in %s-class SSD Arrays",
		"Firmware-Level Write Amplification Control for %s Flash Devices",
		"Rethinking FTL Mapping Granularity for %s Workloads",
		"Reverse-Engineering Black-Box SSD Scheduling under %s Traffic",
	},
	Approach: {
		"A %s-Aware Storage Engine Design for Flash Arrays",
		"Co-Designing %s Software with Conventional SSD Internals",
	},
	Results: {
		"Performance Characterization of %s Systems on Flash SSDs",
		"An Empirical Study of %s Behavior in Flash-Backed Storage",
		"Benchmarking %s Pipelines on Commodity SSDs",
	},
	Orthogonal: {
		"Low-Level %s Techniques for NAND Flash Cells",
		"Error-Correction Advances for %s Flash Media",
	},
}

var syntheticDomains = []string{
	"Datacenter", "Key-Value", "Filesystem", "Virtualization", "Analytics",
	"Transactional", "Caching", "Archival", "Streaming", "Machine-Learning",
	"Graph-Processing", "Multi-Tenant", "Disaggregated", "Embedded",
	"Scientific", "Log-Structured", "Deduplication", "Encryption",
	"Compression", "Erasure-Coded", "Replicated", "Time-Series", "Mobile",
}

// Corpus returns the full 104-entry classified corpus, ordered by venue,
// category, then key.
func Corpus() []Paper {
	var out []Paper
	for _, v := range Venues() {
		for c := Simplified; c < numCategories; c++ {
			want := published[v][c]
			var cell []Paper
			for _, p := range realPapers {
				if p.Venue == v && p.Cat == c {
					cell = append(cell, p)
				}
			}
			if len(cell) > want {
				panic(fmt.Sprintf("survey: more real papers than published count for %s/%s", v, c))
			}
			for i := len(cell); i < want; i++ {
				topics := syntheticTopics[c]
				domain := syntheticDomains[(i*7+int(c)*3+len(v))%len(syntheticDomains)]
				title := fmt.Sprintf(topics[i%len(topics)], domain)
				year := 2016 + (i*5+int(c))%5
				cell = append(cell, Paper{
					Key:       fmt.Sprintf("synth-%s-%s-%02d", strings.ToLower(string(v)), strings.ToLower(c.String()), i),
					Title:     title,
					Venue:     v,
					Year:      year,
					Cat:       c,
					Synthetic: true,
				})
			}
			sort.Slice(cell, func(i, j int) bool { return cell[i].Key < cell[j].Key })
			out = append(out, cell...)
		}
	}
	return out
}

// Row is one venue's line of Table 1.
type Row struct {
	Venue  Venue
	Pubs   int
	Counts [4]int
}

// Table is the reproduced Table 1.
type Table struct {
	Rows  []Row
	Total Row
}

// Table1 computes the taxonomy table from the corpus.
func Table1() Table {
	return tabulate(Corpus())
}

// tabulate aggregates an arbitrary corpus — exposed via Table1 and reused
// by tests with mutated corpora.
func tabulate(corpus []Paper) Table {
	byVenue := map[Venue]int{}
	var t Table
	for i, v := range Venues() {
		t.Rows = append(t.Rows, Row{Venue: v, Pubs: VenuePubCount(v)})
		byVenue[v] = i
	}
	for _, p := range corpus {
		if i, ok := byVenue[p.Venue]; ok {
			t.Rows[i].Counts[p.Cat]++
		}
	}
	t.Total.Venue = "Total"
	for _, r := range t.Rows {
		t.Total.Pubs += r.Pubs
		for c := 0; c < 4; c++ {
			t.Total.Counts[c] += r.Counts[c]
		}
	}
	return t
}

// Classified reports the number of classified papers in the table.
func (t Table) Classified() int {
	n := 0
	for _, c := range t.Total.Counts {
		n += c
	}
	return n
}

// Shares reports the paper's headline percentages: the fraction of
// classified papers that are simplified/solved, affected (approach or
// results), and orthogonal.
func (t Table) Shares() (simplified, affected, orthogonal float64) {
	n := float64(t.Classified())
	if n == 0 {
		return 0, 0, 0
	}
	simplified = float64(t.Total.Counts[Simplified]) / n
	affected = float64(t.Total.Counts[Approach]+t.Total.Counts[Results]) / n
	orthogonal = float64(t.Total.Counts[Orthogonal]) / n
	return simplified, affected, orthogonal
}

// Format renders the table in the paper's layout.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-7s %6s %6s %6s %6s %6s\n", "Venue", "#Pubs.", "Simpl", "Appr", "Res", "Orth")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-7s %6d %6d %6d %6d %6d\n",
			r.Venue, r.Pubs, r.Counts[0], r.Counts[1], r.Counts[2], r.Counts[3])
	}
	fmt.Fprintf(&b, "%-7s %6d %6d %6d %6d %6d\n",
		t.Total.Venue, t.Total.Pubs, t.Total.Counts[0], t.Total.Counts[1], t.Total.Counts[2], t.Total.Counts[3])
	return b.String()
}
