# Developer entry points. `make check` is what CI (and the PR checklist)
# runs: vet, build, race-enabled tests, and the proof that disabled
# telemetry costs zero allocations.

GO ?= go

.PHONY: all check vet build lint lint-affinity lint-fix-dryrun test bench-telemetry bench bench-compare bench-shards fuzz fuzz-zns fuzz-faults fuzz-shards fault-campaign slo-campaign whatif-campaign explain-campaign shard-campaign update-golden clean

all: check

check: vet build lint lint-affinity test bench-telemetry fault-campaign slo-campaign whatif-campaign explain-campaign shard-campaign

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Project-specific static analysis (docs/static-analysis.md): determinism
# (no wall clock/global rand/map-order leaks), concurrency (sim core is a
# single-threaded virtual-time loop), nilguard (nil instruments are no-ops),
# tickunit (no time.Duration in tick arithmetic), shardcheck (per-LUN code
# only writes shard-keyed state), pairing (AttrSink brackets close on every
# path), exhaustive (zone-state switches and the experiment registry are
# complete). Diffs against the committed baseline — LINT_BASELINE.json holds
# the accepted findings (currently none) — and fails on anything new AND on
# stale entries, so suppression debt can only shrink deliberately.
lint:
	$(GO) run ./cmd/simlint -baseline LINT_BASELINE.json ./...

# The shard-affinity report is the parallel core's carve-out contract: which
# state is per-channel/per-LUN/per-block (shardable), which is deliberately
# shared, and which functions run on per-LUN paths. Its acceptance bar is
# the same as every campaign's: two fresh runs reproduce it byte-for-byte.
lint-affinity:
	$(GO) run ./cmd/simlint -affinity ./internal/sim ./internal/flash > /tmp/blockhead-affinity-a.txt
	$(GO) run ./cmd/simlint -affinity ./internal/sim ./internal/flash > /tmp/blockhead-affinity-b.txt
	cmp /tmp/blockhead-affinity-a.txt /tmp/blockhead-affinity-b.txt
	cat /tmp/blockhead-affinity-a.txt

# Triage helper: list the findings the tool could fix mechanically (nilguard
# inserts, missing switch cases) with the edit each would get. Never edits.
lint-fix-dryrun:
	$(GO) run ./cmd/simlint -fix-dryrun ./...

test:
	$(GO) test -race ./...

# The telemetry layer's contract: with no probe attached, every instrument
# (including the latency-attribution sink, the zone state-machine auditor,
# and the flight recorder) is a nil no-op — 0 allocs/op. A regression here
# slows every simulation.
bench-telemetry:
	$(GO) test -run='^$$' -bench=ProbeDisabled -benchmem ./internal/telemetry/ ./internal/telemetry/critpath/ ./internal/telemetry/exemplar/ ./internal/zns/ ./internal/fault/

# Regenerate the pinned JSON schemas served by /metrics.json and
# /attribution.json after a deliberate schema change.
update-golden:
	$(GO) test ./internal/telemetry/httpserve/ -update

# The full per-table benchmark suite (slow; custom metrics carry results).
bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./...

# Rerun the committed benchmark suite (full E4+E6) and gate against the
# committed baseline. The 25% threshold leaves room for modeling changes
# while catching order-of-magnitude regressions; tighten per-investigation
# with `go run ./cmd/benchdiff -threshold ...`.
bench-compare:
	$(GO) run ./cmd/znsbench -run E4,E6 -bench-json /tmp/blockhead-bench-new.json > /dev/null
	$(GO) run ./cmd/benchdiff -threshold 0.25 BENCH_attribution.json /tmp/blockhead-bench-new.json
	$(GO) run ./cmd/benchdiff -threshold 0.001 BENCH_attribution.json BENCH_faults.json
	$(GO) run ./cmd/benchdiff -threshold 0.001 BENCH_critpath.json /tmp/blockhead-bench-new.json
	$(GO) run ./cmd/benchdiff -threshold 0.001 BENCH_exemplars.json /tmp/blockhead-bench-new.json
	$(GO) run ./cmd/znsbench -slo -run E14 -bench-json /tmp/blockhead-bench-slo.json > /dev/null
	$(GO) run ./cmd/benchdiff -threshold 0.25 BENCH_slo.json /tmp/blockhead-bench-slo.json
	$(GO) run ./cmd/znsbench -shards 4 -run E4,E6 -bench-json /tmp/blockhead-bench-shards.json > /dev/null
	$(GO) run ./cmd/benchdiff -threshold 0.001 /tmp/blockhead-bench-new.json /tmp/blockhead-bench-shards.json

# The fault campaign's acceptance bar (docs/faults.md): the same seed and
# profile reproduce the E13 report bit-for-bit — NAND faults, the power
# loss, and both stacks' recoveries included.
fault-campaign:
	$(GO) run ./cmd/znsbench -quick -faults default -run E13 > /tmp/blockhead-e13-a.txt
	$(GO) run ./cmd/znsbench -quick -faults default -run E13 > /tmp/blockhead-e13-b.txt
	cmp /tmp/blockhead-e13-a.txt /tmp/blockhead-e13-b.txt

# The SLO campaign's acceptance bar: the same seed reproduces the E14
# noisy-neighbor report bit-for-bit — per-tenant breakdowns, the blame
# matrix with its exact conservation line, and the SLO verdicts included.
slo-campaign:
	$(GO) run ./cmd/znsbench -quick -slo -run E14 > /tmp/blockhead-e14-a.txt
	$(GO) run ./cmd/znsbench -quick -slo -run E14 > /tmp/blockhead-e14-b.txt
	cmp /tmp/blockhead-e14-a.txt /tmp/blockhead-e14-b.txt

# The what-if campaign's acceptance bar: a counterfactual run (scaled
# timing parameters + write-pointer early ack) reproduces its report
# bit-for-bit — the early-ack path is computed from device state alone, so
# probes cannot perturb the schedule.
whatif-campaign:
	$(GO) run ./cmd/znsbench -quick -whatif zone_reset:0,wp_serial:0 -run E4 > /tmp/blockhead-whatif-a.txt
	$(GO) run ./cmd/znsbench -quick -whatif zone_reset:0,wp_serial:0 -run E4 > /tmp/blockhead-whatif-b.txt
	cmp /tmp/blockhead-whatif-a.txt /tmp/blockhead-whatif-b.txt

# The explain campaign's acceptance bar (docs/observability.md): the
# forensic replay of one measured IO — timeline, blame, device state, and
# what-if verdicts — reproduces byte-for-byte across two runs, because the
# narrative is a pure function of (seed, experiment, sequence number).
explain-campaign:
	$(GO) run ./cmd/znsbench -quick -explain E6:926 > /tmp/blockhead-explain-a.txt
	$(GO) run ./cmd/znsbench -quick -explain E6:926 > /tmp/blockhead-explain-b.txt
	cmp /tmp/blockhead-explain-a.txt /tmp/blockhead-explain-b.txt

# The parallel core's acceptance bar (docs/parallel-sim.md): the same seed
# renders byte-identical reports whatever the -shards count — the serial
# loop at 1 is the reference, the shard scheduler at 2 and 4 must reproduce
# it exactly. TestShardEquivalence covers every experiment under -race; this
# campaign pins the shipped binary end to end.
shard-campaign:
	$(GO) run ./cmd/znsbench -quick -shards 1 -run E4,E13,E14 -slo -faults default > /tmp/blockhead-shards-1.txt
	$(GO) run ./cmd/znsbench -quick -shards 2 -run E4,E13,E14 -slo -faults default > /tmp/blockhead-shards-2.txt
	$(GO) run ./cmd/znsbench -quick -shards 4 -run E4,E13,E14 -slo -faults default > /tmp/blockhead-shards-4.txt
	cmp /tmp/blockhead-shards-1.txt /tmp/blockhead-shards-2.txt
	cmp /tmp/blockhead-shards-1.txt /tmp/blockhead-shards-4.txt

# Wall-clock scaling of the shard scheduler on E4/E6 (the experiments whose
# parts dominate run time), committed as BENCH_shards.json. Honest numbers:
# on a single-CPU host the lanes time-slice one core and the speedup is ~1x;
# see docs/parallel-sim.md for the scaling model.
bench-shards:
	$(GO) run ./cmd/znsbench -shards 1 -run E4,E6 -bench-json /tmp/blockhead-shards-serial.json > /dev/null
	$(GO) run ./cmd/znsbench -shards 4 -run E4,E6 -bench-json /tmp/blockhead-shards-par.json > /dev/null
	$(GO) run ./cmd/benchdiff -threshold 0.001 /tmp/blockhead-shards-serial.json /tmp/blockhead-shards-par.json

# Short fuzz pass over the trace decoder.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzDecode -fuzztime=30s ./internal/trace/

# Short fuzz pass over the ZNS zone state machine (auditor attached).
fuzz-zns:
	$(GO) test -run='^$$' -fuzz=FuzzZoneStateMachine -fuzztime=30s ./internal/zns/

# Short fuzz pass over the differential fault harness: random
# (seed, profile, crash point) schedules against the integrity oracle and
# the zone state-machine auditor, both stacks.
fuzz-faults:
	$(GO) test -run='^$$' -fuzz=FuzzFaultSchedule -fuzztime=30s ./internal/core/

# Short fuzz pass over the parallel scheduler: random (seed, lane count,
# crash point) schedules run both fault-campaign stacks serially and as
# shard lanes; the oracle verdicts must match exactly.
fuzz-shards:
	$(GO) test -run='^$$' -fuzz=FuzzShardSchedule -fuzztime=30s ./internal/core/

clean:
	$(GO) clean ./...
	rm -f trace.json metrics.json cpu.pprof
