# Developer entry points. `make check` is what CI (and the PR checklist)
# runs: vet, build, race-enabled tests, and the proof that disabled
# telemetry costs zero allocations.

GO ?= go

.PHONY: all check vet build test bench-telemetry bench fuzz update-golden clean

all: check

check: vet build test bench-telemetry

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# The telemetry layer's contract: with no probe attached, every instrument
# (including the latency-attribution sink) is a nil no-op — 0 allocs/op.
# A regression here slows every simulation.
bench-telemetry:
	$(GO) test -run='^$$' -bench=ProbeDisabled -benchmem ./internal/telemetry/

# Regenerate the pinned JSON schemas served by /metrics.json and
# /attribution.json after a deliberate schema change.
update-golden:
	$(GO) test ./internal/telemetry/httpserve/ -update

# The full per-table benchmark suite (slow; custom metrics carry results).
bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./...

# Short fuzz pass over the trace decoder.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzDecode -fuzztime=30s ./internal/trace/

clean:
	$(GO) clean ./...
	rm -f trace.json metrics.json cpu.pprof
