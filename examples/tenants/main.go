// tenants: the noisy-neighbor question. Three tenants — a latency-sensitive
// web frontend, an analytics scanner, and a churny writer — share one
// device. Every IO is tagged with its TenantID, every stall is charged to a
// culprit tenant (the blame matrix), and a per-tenant SLO engine renders
// windowed verdicts. The same co-tenants that blow their SLOs on a
// conventional SSD hold them on ZNS with host-scheduled reclamation.
package main

import (
	"fmt"
	"log"

	"blockhead/internal/core"
	"blockhead/internal/telemetry"
)

func main() {
	cfg := core.Config{Quick: true, Seed: 9}
	fmt.Println("3 tenants on one device: web (point reads), analytics (scans), churn (overwrites)")
	fmt.Println()
	for _, run := range []struct {
		name string
		fn   func(core.Config) (core.E14Result, error)
	}{
		{"conventional SSD", core.E14Conventional},
		{"host FTL on ZNS", core.E14HostFTL},
	} {
		res, err := run.fn(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", run.name)
		for _, st := range res.Streams {
			fmt.Printf("  %-10s %5.0f ops/s  mean=%7.0f us  p99=%7.0f us\n",
				st.Name, st.Rate, st.Lat.Mean.Micros(), st.Lat.P99.Micros())
		}
		for _, slo := range res.SLO {
			verdict := "PASS"
			if !slo.OK {
				verdict = "FAIL"
			}
			fmt.Printf("  SLO %-10s %-5s %s (%d/%d windows violated, burn %.2f)\n",
				res.Tenants.Name(slo.SLO.Tenant), slo.SLO.Op, verdict,
				slo.Violated, slo.Windows, slo.BurnRate)
		}
		// Who is to blame? Column sums of the victim×culprit stall matrix.
		var top telemetry.TenantID
		for t := telemetry.TenantID(1); t < telemetry.MaxTenants; t++ {
			if res.Tenants.BlamedNs(t) > res.Tenants.BlamedNs(top) {
				top = t
			}
		}
		fmt.Printf("  top culprit: %s (blamed for %.1f ms of tenant stalls)\n\n",
			res.Tenants.Name(top), float64(res.Tenants.BlamedNs(top))/1e6)
	}
	fmt.Println("Blame is conserved exactly — every microsecond a tenant stalls is")
	fmt.Println("charged to a culprit — and the host-scheduled ZNS stack keeps every")
	fmt.Println("SLO green at the same offered load that sinks the conventional one.")
}
