// tenants: the §4.2 active-zone-limit question. Seven bursty tenants share
// a ZNS SSD that allows 14 active zones. A static policy pins 2 zones per
// tenant; a dynamic policy lends the idle tenants' budget to whoever is
// bursting. Burst completion times show why "a fixed active zone budget
// does not scale for typical bursty workloads".
package main

import (
	"fmt"
	"log"

	"blockhead/internal/core"
)

func main() {
	cfg := core.Config{Quick: true, Seed: 9}
	fmt.Println("7 bursty tenants, 14 active zones, bursts want 8-way zone parallelism")
	fmt.Println()
	for _, policy := range []core.ZonePolicy{core.StaticZones, core.DynamicZones} {
		res, err := core.E8Run(policy, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s bursts=%3d  p50=%6.1f ms  p99=%6.1f ms  aggregate %6.0f pages/s\n",
			policy, res.Bursts, res.BurstP50.Millis(), res.BurstP99.Millis(), res.PagesPerSS)
	}
	fmt.Println()
	fmt.Println("Dynamic assignment multiplexes the scarce active-zone budget across")
	fmt.Println("tenants whose bursts rarely overlap — the open question of §4.2.")
}
