// kvstore: the paper's §2.4 RocksDB story in miniature. The same LSM
// key-value store runs twice — once on a conventional SSD, once on a ZNS
// SSD with zone-per-level placement — under identical fill + overwrite
// traffic, and the device-level write amplification and read latencies are
// compared.
package main

import (
	"fmt"
	"log"

	"blockhead/internal/flash"
	"blockhead/internal/ftl"
	"blockhead/internal/sim"
	"blockhead/internal/stats"
	"blockhead/internal/workload"
	"blockhead/internal/zkv"
	"blockhead/internal/zns"
)

const (
	keys   = 6000
	churn  = 6000
	valLen = 580
)

func geometry() flash.Geometry {
	return flash.Geometry{Channels: 2, DiesPerChan: 1, PlanesPerDie: 1,
		BlocksPerLUN: 64, PagesPerBlock: 64, PageSize: 1024}
}

func opts() zkv.Options {
	return zkv.Options{MemtableBytes: 64 << 10, BaseLevelBytes: 256 << 10,
		TableTargetBytes: 32 << 10, Seed: 1}
}

func key(i int64) []byte { return []byte(fmt.Sprintf("user%08d", i)) }

func run(name string, backend zkv.Backend) {
	db := zkv.Open(backend, opts())
	src := workload.NewSource(7)
	kg := workload.NewUniform(src, keys)
	val := make([]byte, valLen)

	var at sim.Time
	for i := int64(0); i < keys; i++ {
		var err error
		if at, err = db.Put(at, key(i), val); err != nil {
			log.Fatalf("%s fill: %v", name, err)
		}
	}
	reads := stats.NewDist(1024)
	for i := 0; i < churn; i++ {
		var err error
		if at, err = db.Put(at, key(kg.Next()), val); err != nil {
			log.Fatalf("%s churn: %v", name, err)
		}
		done, _, found, err := db.Get(at, key(kg.Next()))
		if err != nil || !found {
			log.Fatalf("%s get: %v found=%v", name, err, found)
		}
		reads.Add(done - at)
		at = done
	}

	st := db.Stats()
	sum := reads.Summary()
	fmt.Printf("%-22s deviceWA=%.2f appWA=%.2f flushes=%d compactions=%d\n",
		name, backend.Counters().WriteAmp(), st.AppWriteAmp(), st.Flushes, st.Compactions)
	fmt.Printf("%22s read mean=%.0fus p99=%.0fus p999=%.0fus\n",
		"", sum.Mean.Micros(), sum.P99.Micros(), sum.P999.Micros())
}

func main() {
	fmt.Printf("LSM KV store: %d keys, %d overwrites, %dB values\n\n", keys, churn, valLen)

	convDev, err := ftl.New(ftl.Config{Geom: geometry(), Lat: flash.LatenciesFor(flash.TLC),
		OPFraction: 0.07, HotColdSeparation: true, TrimSupported: false, StoreData: true})
	if err != nil {
		log.Fatal(err)
	}
	cb, err := zkv.NewConvBackend(convDev, 64)
	if err != nil {
		log.Fatal(err)
	}
	cb.SetAllocPolicy(zkv.ScatterFit)
	run("conventional SSD", cb)

	znsDev, err := zns.New(zns.Config{Geom: geometry(), Lat: flash.LatenciesFor(flash.TLC),
		ZoneBlocks: 2, StoreData: true})
	if err != nil {
		log.Fatal(err)
	}
	zb, err := zkv.NewZNSBackend(znsDev, 4)
	if err != nil {
		log.Fatal(err)
	}
	run("ZNS (zone per level)", zb)

	fmt.Println("\nThe ZNS backend groups SSTables into zones by LSM level, so dead")
	fmt.Println("tables free whole zones: reclamation is a reset, not a copy (§2.4).")
}
