// queue: the §4.2 problem workload — "multi-writer workloads where writes
// are concentrated in a single zone, such as persistent queues and
// append-only data structures" — built both ways:
//
//   - with regular zone writes, where every producer must hold the
//     write-pointer lock across its whole write, and
//   - with zone append, where the device serializes and producers never
//     coordinate.
//
// Eight producers enqueue 4 KiB records; a consumer drains in order and
// fully-consumed zones are reset for reuse. The enqueue throughput gap is
// the paper's argument for adding append to the spec.
package main

import (
	"fmt"
	"log"

	"blockhead/internal/flash"
	"blockhead/internal/sim"
	"blockhead/internal/zns"
)

const (
	producers = 8
	records   = 4000
)

func newDevice() *zns.Device {
	dev, err := zns.New(zns.Config{
		Geom: flash.Geometry{Channels: 8, DiesPerChan: 1, PlanesPerDie: 1,
			BlocksPerLUN: 8, PagesPerBlock: 128, PageSize: 4096},
		Lat:        flash.LatenciesFor(flash.TLC),
		ZoneBlocks: 8, // the queue's head zone stripes all 8 LUNs
		StoreData:  true,
	})
	if err != nil {
		log.Fatal(err)
	}
	return dev
}

// queue is an append-only multi-producer queue over zones.
type queue struct {
	dev       *zns.Device
	useAppend bool
	head      int // zone being produced into
	tailZone  int // zone being consumed
	tailOff   int64
	lockFree  sim.Time // write-pointer lock (regular-write mode only)
	enqueued  uint64
	dequeued  uint64
}

// enqueue appends one record at time t on behalf of one producer and
// returns its completion time.
func (q *queue) enqueue(t sim.Time, payload []byte) (sim.Time, error) {
	if q.dev.WP(q.head) >= q.dev.WritableCap(q.head) {
		next := (q.head + 1) % q.dev.NumZones()
		if next == q.tailZone {
			return t, fmt.Errorf("queue full")
		}
		q.head = next
	}
	if q.useAppend {
		_, done, err := q.dev.Append(t, q.head, payload)
		if err == nil {
			q.enqueued++
		}
		return done, err
	}
	// Regular writes: hold the WP lock from issue to completion.
	start := sim.Max(t, q.lockFree)
	done, err := q.dev.Write(start, q.dev.LBA(q.head, q.dev.WP(q.head)), payload)
	if err != nil {
		return t, err
	}
	q.lockFree = done
	q.enqueued++
	return done, nil
}

// dequeue pops the oldest record; fully-drained zones are reset.
func (q *queue) dequeue(t sim.Time) (sim.Time, []byte, error) {
	if q.dequeued >= q.enqueued {
		return t, nil, fmt.Errorf("queue empty")
	}
	done, data, err := q.dev.Read(t, q.dev.LBA(q.tailZone, q.tailOff))
	if err != nil {
		return t, nil, err
	}
	q.dequeued++
	q.tailOff++
	if q.tailOff >= q.dev.WritableCap(q.tailZone) {
		if done, err = q.dev.Reset(done, q.tailZone); err != nil {
			return done, nil, err
		}
		q.tailZone = (q.tailZone + 1) % q.dev.NumZones()
		q.tailOff = 0
	}
	return done, data, nil
}

// produceAll runs the producers closed-loop and returns the virtual time
// the last record lands.
func produceAll(q *queue) sim.Time {
	times := make([]sim.Time, producers)
	var last sim.Time
	for i := 0; i < records; i++ {
		// Next producer is whoever's clock is earliest (a tiny scheduler).
		p := 0
		for j := 1; j < producers; j++ {
			if times[j] < times[p] {
				p = j
			}
		}
		done, err := q.enqueue(times[p], []byte(fmt.Sprintf("record-%05d", i)))
		if err != nil {
			log.Fatalf("enqueue %d: %v", i, err)
		}
		times[p] = done
		if done > last {
			last = done
		}
	}
	return last
}

func run(useAppend bool) {
	q := &queue{dev: newDevice(), useAppend: useAppend, tailZone: 0}
	end := produceAll(q)
	mode := "write+lock"
	if useAppend {
		mode = "zone append"
	}
	fmt.Printf("%-12s %d producers enqueued %d records in %7.1f ms (%6.0f rec/s)\n",
		mode, producers, records, end.Millis(), float64(records)/end.Seconds())

	// Drain a few records to show ordering survives either path.
	at := end
	for i := 0; i < 3; i++ {
		var data []byte
		var err error
		at, data, err = q.dequeue(at)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%12s dequeued %q\n", "", data)
	}
}

func main() {
	fmt.Println("persistent queue over one shared zone (§4.2's problem workload)")
	fmt.Println()
	run(false)
	run(true)
	fmt.Println("\nThe append command lets the device serialize concurrent producers,")
	fmt.Println("restoring the stripe's parallelism that the write-pointer lock destroys.")
}
