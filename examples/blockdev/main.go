// blockdev: rebuild the conventional block interface on a ZNS SSD in host
// software, as §2.3 describes ("it was straightforward to implement the
// block interface on the host"). Random 4K overwrites flow through the
// host translation layer; relocation uses the NVMe simple-copy command, so
// no relocation byte ever crosses PCIe.
package main

import (
	"fmt"
	"log"

	"blockhead/internal/flash"
	"blockhead/internal/hostftl"
	"blockhead/internal/sim"
	"blockhead/internal/workload"
	"blockhead/internal/zns"
)

func main() {
	dev, err := zns.New(zns.Config{
		Geom: flash.Geometry{Channels: 4, DiesPerChan: 1, PlanesPerDie: 1,
			BlocksPerLUN: 32, PagesPerBlock: 64, PageSize: 4096},
		Lat:        flash.LatenciesFor(flash.TLC),
		ZoneBlocks: 1,
		StoreData:  true,
	})
	if err != nil {
		log.Fatal(err)
	}
	f, err := hostftl.New(dev, hostftl.Config{
		OPFraction:     0.15,
		ZonesPerStream: 4,
		UseSimpleCopy:  true,
		GCMode:         hostftl.GCIncremental,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("block device: %d logical pages over %d zones (host-side FTL)\n\n",
		f.CapacityPages(), dev.NumZones())

	// Random overwrites, 4x the logical capacity — impossible on raw zones,
	// routine through the translation layer.
	src := workload.NewSource(11)
	keys := workload.NewUniform(src, f.CapacityPages())
	var at sim.Time
	payload := []byte("random block write")
	n := 4 * f.CapacityPages()
	for i := int64(0); i < n; i++ {
		lpn := keys.Next()
		if at, err = f.Write(at, lpn, payload); err != nil {
			log.Fatalf("write %d: %v", i, err)
		}
	}
	// Read-after-write across the whole space still holds.
	checked := 0
	for lpn := int64(0); lpn < f.CapacityPages(); lpn += 97 {
		_, data, err := f.Read(at, lpn)
		if err == hostftl.ErrUnmapped {
			continue
		}
		if err != nil {
			log.Fatalf("read %d: %v", lpn, err)
		}
		if string(data) != string(payload) {
			log.Fatalf("lpn %d: corrupted payload %q", lpn, data)
		}
		checked++
	}

	c := f.Counters()
	fmt.Printf("wrote %d pages (%.1fx capacity) in %.0f ms of device time\n",
		n, 4.0, at.Millis())
	fmt.Printf("verified %d read-after-write samples\n\n", checked)
	fmt.Printf("write amplification: %.2f (host-chosen OP of 15%%)\n", f.WriteAmp())
	fmt.Printf("zones recycled:      %d\n", f.GCResets())
	fmt.Printf("PCIe traffic:        %.1f MiB for %.1f MiB of host I/O\n",
		float64(c.PCIeBytes)/(1<<20),
		float64((c.HostWritePages+c.HostReadPages)*4096)/(1<<20))
	fmt.Println("\nRelocation moved data with simple copy: PCIe bytes == host bytes (§2.3).")
}
