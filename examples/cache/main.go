// cache: the §4.1 flash-cache story. Three designs serve the same zipfian
// object workload:
//
//   - a set-associative cache on a conventional SSD (no DRAM buffer, but
//     every insert is a small random write the FTL amplifies),
//   - a region-buffered cache on a conventional SSD (the CacheLib/RIPQ
//     workaround: coalesce writes in a DRAM region buffer), and
//   - a zone-native cache on a ZNS SSD (append straight to zones; evict by
//     resetting the oldest zone).
//
// The point: ZNS gets the buffered design's write amplification with the
// unbuffered design's DRAM footprint — "these buffers are no longer
// necessary".
package main

import (
	"fmt"
	"log"

	"blockhead/internal/flash"
	"blockhead/internal/ftl"
	"blockhead/internal/sim"
	"blockhead/internal/workload"
	"blockhead/internal/zcache"
	"blockhead/internal/zns"
)

const (
	objPages = 4
	nKeys    = 4000
	nOps     = 30000
)

func geometry() flash.Geometry {
	return flash.Geometry{Channels: 4, DiesPerChan: 1, PlanesPerDie: 1,
		BlocksPerLUN: 32, PagesPerBlock: 64, PageSize: 4096}
}

func drive(c zcache.Cache) {
	src := workload.NewSource(3)
	keys := workload.NewZipf(src, nKeys, 0.99)
	var at sim.Time
	for i := 0; i < nOps; i++ {
		k := keys.Next()
		done, hit, err := c.Get(at, k)
		if err != nil {
			log.Fatalf("%s get: %v", c.Name(), err)
		}
		at = done
		if !hit {
			if at, err = c.Insert(at, k, objPages); err != nil {
				log.Fatalf("%s insert: %v", c.Name(), err)
			}
		}
	}
	s := c.Stats()
	fmt.Printf("%-15s hit ratio %.3f  deviceWA %.2f  DRAM buffer %6.0f KiB  evictions %d\n",
		c.Name(), s.HitRatio(), c.Counters().WriteAmp(),
		float64(c.DRAMBufferBytes())/1024, s.Evictions)
}

func main() {
	fmt.Printf("flash cache: %d zipfian keys, %d lookups, %d-page objects\n\n", nKeys, nOps, objPages)

	mkConv := func() *ftl.Device {
		d, err := ftl.NewDefault(geometry(), flash.LatenciesFor(flash.TLC), 0.11)
		if err != nil {
			log.Fatal(err)
		}
		return d
	}
	sa, err := zcache.NewSetAssoc(mkConv(), objPages, 4)
	if err != nil {
		log.Fatal(err)
	}
	drive(sa)

	cb, err := zcache.NewConvBuffered(mkConv(), 256) // 1 MiB region buffer
	if err != nil {
		log.Fatal(err)
	}
	drive(cb)

	zdev, err := zns.New(zns.Config{Geom: geometry(), Lat: flash.LatenciesFor(flash.TLC),
		ZoneBlocks: 4})
	if err != nil {
		log.Fatal(err)
	}
	drive(zcache.NewZNSCache(zdev))

	fmt.Println("\nZNS matches the buffered design's WA with zero coalescing DRAM (§4.1).")
}
