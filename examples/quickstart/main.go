// Quickstart: create a simulated ZNS SSD, walk a zone through its life
// cycle (§2.1) — open, sequential writes at the write pointer, the
// write-pointer rule, zone append, read back, finish, reset — and print
// the zone report at each step.
package main

import (
	"fmt"
	"log"

	"blockhead/internal/flash"
	"blockhead/internal/sim"
	"blockhead/internal/zns"
)

func main() {
	// An 8-zone device with 4-block zones striped over 4 LUNs.
	dev, err := zns.New(zns.Config{
		Geom: flash.Geometry{Channels: 4, DiesPerChan: 1, PlanesPerDie: 1,
			BlocksPerLUN: 8, PagesPerBlock: 64, PageSize: 4096},
		Lat:        flash.LatenciesFor(flash.TLC),
		ZoneBlocks: 4,
		MaxActive:  14, // the paper's example device supports 14
		StoreData:  true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device: %d zones x %d pages (%.0f MiB each), max %d active\n\n",
		dev.NumZones(), dev.ZonePages(),
		float64(dev.ZonePages()*int64(dev.PageSize()))/(1<<20), dev.MaxActive())

	var at sim.Time

	// 1. Writes must land exactly at the write pointer.
	fmt.Println("1. sequential writes at the write pointer")
	for i := 0; i < 3; i++ {
		done, err := dev.Write(at, dev.LBA(0, dev.WP(0)), []byte(fmt.Sprintf("page-%d", i)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   wrote zone 0 offset %d, done at %.1f us\n", dev.WP(0)-1, done.Micros())
		at = done
	}

	// 2. A write anywhere else is rejected: this is the §4.2 serialization
	// problem for multi-writer hosts.
	fmt.Println("\n2. out-of-order write")
	if _, err := dev.Write(at, dev.LBA(0, 10), nil); err != nil {
		fmt.Printf("   rejected as expected: %v\n", err)
	}

	// 3. Zone append lets the device pick the offset.
	fmt.Println("\n3. zone append")
	lba, done, err := dev.Append(at, 0, []byte("appended"))
	if err != nil {
		log.Fatal(err)
	}
	z, off := dev.ZoneOf(lba)
	fmt.Printf("   device placed it at zone %d offset %d\n", z, off)
	at = done

	// 4. Read it back.
	done, data, err := dev.Read(at, lba)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n4. read back: %q (%.1f us)\n", data, (done - at).Micros())
	at = done

	// 5. Finish releases the zone's active resources without filling it.
	if err := dev.Finish(at, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n5. finished zone 0: state=%v, active zones now %d\n", dev.State(0), dev.ActiveZones())

	// 6. Reset erases the zone's blocks; the erases run in parallel across
	// the stripe's LUNs.
	done, err = dev.Reset(at, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n6. reset zone 0 in %.2f ms (4 block erases in parallel)\n", (done - at).Millis())
	at = done

	// 7. The zone report, blkzone style.
	fmt.Println("\n7. zone report")
	for _, zi := range dev.ZoneReport()[:4] {
		fmt.Printf("   zone %d: %-6s wp=%-4d cap=%d\n", zi.Zone, zi.State, zi.WP, zi.Cap)
	}

	c := dev.Counters()
	fmt.Printf("\ncounters: host writes %d, flash programs %d (WA %.2f — the device never copies)\n",
		c.HostWritePages, c.FlashProgramPages, c.WriteAmp())
}
