// Integration tests driving several subsystems together, end to end.
package blockhead

import (
	"bytes"
	"fmt"
	"testing"

	"blockhead/internal/core"
	"blockhead/internal/flash"
	"blockhead/internal/ftl"
	"blockhead/internal/hostftl"
	"blockhead/internal/sim"
	"blockhead/internal/trace"
	"blockhead/internal/workload"
	"blockhead/internal/zkv"
	"blockhead/internal/zns"
)

// One workload trace, recorded once, replayed against both device classes:
// the §4.2 "systematically test workloads" loop in miniature.
func TestIntegrationTraceReplayAcrossDevices(t *testing.T) {
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	src := workload.NewSource(5)
	arr := workload.NewPoisson(src, 4000)
	keys := workload.NewZipf(src, 4000, 0.99)
	var at sim.Time
	const ops = 30000
	for i := 0; i < ops; i++ {
		at = arr.Next(at)
		kind := trace.OpWrite
		if src.Float64() < 0.25 {
			kind = trace.OpRead
		}
		if err := w.Append(trace.Record{At: at, Kind: kind, LBA: keys.Next(), Pages: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	geom := flash.Geometry{Channels: 4, DiesPerChan: 1, PlanesPerDie: 1,
		BlocksPerLUN: 32, PagesPerBlock: 64, PageSize: 4096}

	// Conventional replay.
	conv, err := ftl.NewDefault(geom, flash.LatenciesFor(flash.TLC), 0.11)
	if err != nil {
		t.Fatal(err)
	}
	written := map[int64]bool{}
	nConv, err := trace.Replay(trace.NewReader(bytes.NewReader(raw)), func(rec trace.Record) error {
		lpn := rec.LBA % conv.CapacityPages()
		switch rec.Kind {
		case trace.OpWrite:
			_, err := conv.WritePage(rec.At, lpn, nil)
			written[lpn] = true
			return err
		case trace.OpRead:
			if !written[lpn] {
				return nil
			}
			_, _, err := conv.ReadPage(rec.At, lpn)
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Block-on-ZNS replay of the identical bytes.
	zdev, err := zns.New(zns.Config{Geom: geom, Lat: flash.LatenciesFor(flash.TLC), ZoneBlocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	host, err := hostftl.New(zdev, hostftl.Config{ZonesPerStream: 4, UseSimpleCopy: true,
		GCMode: hostftl.GCIncremental})
	if err != nil {
		t.Fatal(err)
	}
	written = map[int64]bool{}
	nHost, err := trace.Replay(trace.NewReader(bytes.NewReader(raw)), func(rec trace.Record) error {
		lpn := rec.LBA % host.CapacityPages()
		switch rec.Kind {
		case trace.OpWrite:
			_, err := host.Write(rec.At, lpn, nil)
			written[lpn] = true
			return err
		case trace.OpRead:
			if !written[lpn] {
				return nil
			}
			_, _, err := host.Read(rec.At, lpn)
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if nConv != ops || nHost != ops {
		t.Fatalf("replayed %d/%d records, want %d", nConv, nHost, ops)
	}
	if conv.Counters().WriteAmp() < 1 || host.WriteAmp() < 1 {
		t.Error("write amplification below 1 is impossible")
	}
}

// The LSM store must keep its data intact while the underlying ZNS device
// wears out and shrinks zones underneath it.
func TestIntegrationKVOnWearingDevice(t *testing.T) {
	dev, err := zns.New(zns.Config{
		Geom: flash.Geometry{Channels: 2, DiesPerChan: 1, PlanesPerDie: 1,
			BlocksPerLUN: 96, PagesPerBlock: 64, PageSize: 1024},
		Lat:        flash.LatenciesFor(flash.TLC),
		ZoneBlocks: 2,
		Endurance:  4, // very low: zones start dying mid-run
		StoreData:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	backend, err := zkv.NewZNSBackend(dev, 3)
	if err != nil {
		t.Fatal(err)
	}
	db := zkv.Open(backend, zkv.Options{MemtableBytes: 32 << 10,
		BaseLevelBytes: 128 << 10, TableTargetBytes: 16 << 10, Seed: 1})
	src := workload.NewSource(2)
	keys := workload.NewUniform(src, 1500)
	key := func(i int64) []byte { return []byte(fmt.Sprintf("k%07d", i)) }
	latest := map[int64]int{}
	var at sim.Time
	for i := 0; i < 20000; i++ {
		k := keys.Next()
		var err error
		at, err = db.Put(at, key(k), []byte(fmt.Sprintf("v%d", i)))
		if err != nil {
			// Running out of healthy zones is a legitimate end state; the
			// data written so far must still be intact.
			t.Logf("device wore out after %d puts: %v", i, err)
			break
		}
		latest[k] = i
	}
	checked := 0
	for k, v := range latest {
		_, got, found, err := db.Get(at, key(k))
		if err != nil {
			t.Fatalf("get %d: %v", k, err)
		}
		if !found || string(got) != fmt.Sprintf("v%d", v) {
			t.Fatalf("key %d corrupted on wearing device: %q (want v%d)", k, got, v)
		}
		checked++
	}
	if checked < 100 {
		t.Fatalf("only %d keys verified; device died too early to test anything", checked)
	}
}

// Experiments are deterministic: identical seeds give identical results,
// and the headline shape holds across seeds.
func TestIntegrationDeterminism(t *testing.T) {
	a, _, err := core.E2Point(0.11, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := core.E2Point(0.11, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed, different WA: %v vs %v", a, b)
	}
	for _, seed := range []int64{1, 99, 12345} {
		lo, _, err := core.E2Point(0.25, 2, seed)
		if err != nil {
			t.Fatal(err)
		}
		hi, _, err := core.E2Point(0, 2, seed)
		if err != nil {
			t.Fatal(err)
		}
		if hi <= 3*lo {
			t.Errorf("seed %d: WA(0%%)=%v not well above WA(25%%)=%v", seed, hi, lo)
		}
	}
}
