// Command zonectl is a blkzone-style tool for poking at a simulated ZNS
// device: it builds a device, applies a scripted sequence of zone
// operations, and dumps the zone report. It exists to make the device
// model's state machine observable from the command line.
//
// Usage:
//
//	zonectl                                   # report on a fresh device
//	zonectl -zones 8 -zone-pages 64           # custom layout
//	zonectl -ops "append:0,append:0,finish:1,reset:0,open:2"
//	zonectl -ops "append:0,finish:0" -trace-out t.json -metrics-out m.json
//	zonectl -ops "append:0,reset:0" -serve :8078
//	zonectl inspect -ops "append:0,reset:0"   # zone map, wear, audit, flight
//	zonectl inspect -json -ops "append:0"     # same as machine-readable JSON
//
// Each op is name:zone; supported ops: open, close, finish, reset, append.
// -trace-out / -metrics-out record the op sequence through the telemetry
// layer; -serve keeps an HTTP server up after the sequence with the
// metrics, per-phase latency attribution of the appends and resets, and
// the live dashboard (see docs/observability.md).
//
// The inspect subcommand runs the same op sequence with the zone
// state-machine auditor attached and prints the device's introspection
// state: the zone census and per-zone report, the flash wear summary, the
// audit verdict, and the flight recorder's event history. With -json it
// emits the /heatmap.json and /flight.json shapes instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"blockhead/internal/flash"
	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
	"blockhead/internal/telemetry/httpserve"
	"blockhead/internal/zns"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "inspect" {
		if err := runInspect(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "zonectl inspect:", err)
			os.Exit(1)
		}
		return
	}
	var (
		zones      = flag.Int("zones", 16, "number of zones")
		zonePages  = flag.Int("zone-pages", 256, "pages per zone")
		maxActive  = flag.Int("max-active", 14, "active-zone limit (0 = unlimited)")
		ops        = flag.String("ops", "", "comma-separated ops, e.g. append:0,finish:1,reset:0")
		cell       = flag.String("cell", "TLC", "cell type: SLC, MLC, TLC, QLC, PLC")
		metricsOut = flag.String("metrics-out", "", "write metrics JSON for the op sequence to this file")
		traceOut   = flag.String("trace-out", "", "write Chrome trace-event JSON for the op sequence to this file")
		serve      = flag.String("serve", "", "serve the telemetry over HTTP on this address (e.g. :8078)")
	)
	flag.Parse()

	dev, err := buildDevice(*zones, *zonePages, *maxActive, *cell)
	if err != nil {
		fmt.Fprintln(os.Stderr, "zonectl:", err)
		os.Exit(1)
	}

	var probe *telemetry.Probe
	if *metricsOut != "" || *traceOut != "" || *serve != "" {
		probe = telemetry.NewProbe(telemetry.Options{SampleEvery: 100 * sim.Microsecond})
		dev.SetProbe(probe)
	}
	var server *httpserve.Server
	if *serve != "" {
		if server, err = httpserve.New(probe, httpserve.Options{Addr: *serve}); err != nil {
			fmt.Fprintln(os.Stderr, "zonectl:", err)
			os.Exit(1)
		}
		probe.Pub = server
	}

	var at sim.Time
	if *ops != "" {
		for _, op := range strings.Split(*ops, ",") {
			at, err = apply(dev, probe.Attribution(), at, strings.TrimSpace(op))
			if err != nil {
				fmt.Fprintf(os.Stderr, "zonectl: %s: %v\n", op, err)
				os.Exit(1)
			}
		}
	}

	fmt.Printf("device: %d zones x %d pages (%d KiB), max-active %d, virtual time %.3f ms\n",
		dev.NumZones(), dev.ZonePages(),
		dev.ZonePages()*int64(dev.PageSize())/1024, dev.MaxActive(), at.Millis())
	fmt.Printf("active %d, open %d, resets %d, appends %d\n\n",
		dev.ActiveZones(), dev.OpenZones(), dev.Resets(), dev.Appends())
	fmt.Printf("%-6s %-10s %10s %10s\n", "zone", "state", "wp", "cap")
	for _, zi := range dev.ZoneReport() {
		fmt.Printf("%-6d %-10s %10d %10d\n", zi.Zone, zi.State, zi.WP, zi.Cap)
	}

	if probe != nil {
		if err := export(probe, at, *metricsOut, *traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "zonectl:", err)
			os.Exit(1)
		}
	}
	if server != nil {
		server.Publish(at)
		fmt.Fprintf(os.Stderr, "zonectl: serving telemetry at %s/ (Ctrl-C to exit)\n", server.URL())
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
		server.Close()
	}
}

// runInspect is the `zonectl inspect` subcommand: it applies the op
// sequence with a full probe and the state-machine auditor attached, then
// prints the device's introspection state (or, with -json, the heatmap and
// flight dumps the HTTP endpoints would serve).
func runInspect(args []string) error {
	fs := flag.NewFlagSet("zonectl inspect", flag.ExitOnError)
	var (
		zones     = fs.Int("zones", 16, "number of zones")
		zonePages = fs.Int("zone-pages", 256, "pages per zone")
		maxActive = fs.Int("max-active", 14, "active-zone limit (0 = unlimited)")
		ops       = fs.String("ops", "", "comma-separated ops, e.g. append:0,finish:1,reset:0")
		cell      = fs.String("cell", "TLC", "cell type: SLC, MLC, TLC, QLC, PLC")
		jsonOut   = fs.Bool("json", false, "emit the heatmap and flight dumps as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	dev, err := buildDevice(*zones, *zonePages, *maxActive, *cell)
	if err != nil {
		return err
	}
	probe := telemetry.NewProbe(telemetry.Options{})
	dev.SetProbe(probe)
	aud := dev.AttachAuditor()

	var at sim.Time
	if *ops != "" {
		for _, op := range strings.Split(*ops, ",") {
			if at, err = apply(dev, probe.Attribution(), at, strings.TrimSpace(op)); err != nil {
				return fmt.Errorf("%s: %w", op, err)
			}
		}
	}

	if *jsonOut {
		out := struct {
			Heatmap telemetry.HeatmapDump `json:"heatmap"`
			Flight  telemetry.FlightDump  `json:"flight"`
		}{probe.HeatDump(at), probe.Flight().Dump()}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}

	fmt.Printf("device: %d zones x %d pages, max-active %d, virtual time %.3f ms\n",
		dev.NumZones(), dev.ZonePages(), dev.MaxActive(), at.Millis())
	fmt.Printf("zone map: %s\n", dev.StateCensus())
	fmt.Printf("%-6s %-10s %10s %10s\n", "zone", "state", "wp", "cap")
	for _, zi := range dev.ZoneReport() {
		fmt.Printf("%-6d %-10s %10d %10d\n", zi.Zone, zi.State, zi.WP, zi.Cap)
	}
	w := dev.Flash().Wear()
	fmt.Printf("\nwear: blocks=%d bad=%d erases=%d max=%d min=%d mean=%.2f spread=%d skew=%.2f\n",
		w.Blocks, w.BadBlocks, w.TotalErases, w.MaxErase, w.MinErase, w.MeanErase, w.Spread, w.Skew)
	if err := aud.Check(); err != nil {
		fmt.Printf("audit: FAILED: %v\n", err)
	} else if v := aud.Violations(); v > 0 {
		fmt.Printf("audit: %d violations\n", v)
	} else {
		fmt.Printf("audit: clean\n")
	}
	fmt.Println()
	return probe.Flight().WriteText(os.Stdout)
}

// export writes the telemetry collected over the op sequence.
func export(p *telemetry.Probe, at sim.Time, metricsOut, traceOut string) error {
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			return err
		}
		if err := p.Metrics.WriteJSON(f, at); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := p.Trace.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func buildDevice(zones, zonePages, maxActive int, cell string) (*zns.Device, error) {
	var ct flash.CellType
	switch strings.ToUpper(cell) {
	case "SLC":
		ct = flash.SLC
	case "MLC":
		ct = flash.MLC
	case "TLC":
		ct = flash.TLC
	case "QLC":
		ct = flash.QLC
	case "PLC":
		ct = flash.PLC
	default:
		return nil, fmt.Errorf("unknown cell type %q", cell)
	}
	// One block per zone on a LUN-per-channel geometry wide enough to hold
	// the requested zone count.
	geom := flash.Geometry{Channels: 4, DiesPerChan: 1, PlanesPerDie: 1,
		BlocksPerLUN: (zones + 3) / 4, PagesPerBlock: zonePages, PageSize: 4096}
	return zns.New(zns.Config{Geom: geom, Lat: flash.LatenciesFor(ct),
		ZoneBlocks: 1, MaxActive: maxActive})
}

// apply runs one op. Appends and resets — the ops with device latency —
// are bracketed as attributed writes, so /attribution.json decomposes the
// sequence's time into phases (nil sink: no-op).
func apply(dev *zns.Device, attr *telemetry.AttrSink, at sim.Time, op string) (sim.Time, error) {
	name, zoneStr, ok := strings.Cut(op, ":")
	if !ok {
		return at, fmt.Errorf("want name:zone")
	}
	z, err := strconv.Atoi(zoneStr)
	if err != nil {
		return at, err
	}
	attributed := func(run func() (sim.Time, error)) (sim.Time, error) {
		attr.Begin(telemetry.OpWrite, at)
		done, err := run()
		if err != nil {
			attr.Drop()
			return done, err
		}
		attr.End(done)
		return done, nil
	}
	switch name {
	case "open":
		return at, dev.Open(at, z)
	case "close":
		return at, dev.Close(at, z)
	case "finish":
		return at, dev.Finish(at, z)
	case "reset":
		return attributed(func() (sim.Time, error) { return dev.Reset(at, z) })
	case "append":
		return attributed(func() (sim.Time, error) {
			_, done, err := dev.Append(at, z, nil)
			return done, err
		})
	default:
		return at, fmt.Errorf("unknown op %q", name)
	}
}
