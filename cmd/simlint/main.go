// Command simlint runs the project's static-analysis suite over the module:
// the determinism, concurrency, nil-guard, tick-unit, shard-affinity,
// bracket-pairing, and exhaustiveness contracts that keep every simulation
// bit-identical across runs, every disabled instrument a zero-alloc no-op,
// and the road to the parallel sim core provable. See docs/static-analysis.md
// for the rule set, the //simlint:allow and //simlint:shared directives, and
// the baseline workflow.
//
// Usage:
//
//	go run ./cmd/simlint ./...
//	go run ./cmd/simlint -affinity ./internal/sim ./internal/flash
//	go run ./cmd/simlint -json -baseline LINT_BASELINE.json ./...
//
// Exit status is 0 when the module is clean (or matches the baseline), 1
// when there are findings, and 2 when packages fail to load or type-check.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"blockhead/internal/lint"
)

func main() {
	rules := flag.Bool("rules", false, "print the rule set and exit")
	jsonOut := flag.Bool("json", false, "print findings as the machine-readable simlint/v1 JSON document")
	affinity := flag.Bool("affinity", false, "print the shard-affinity report (the parallel-core carve-out contract) and exit")
	baseline := flag.String("baseline", "", "compare findings against the baseline `file`; fail on new findings and on stale entries")
	writeBaseline := flag.String("write-baseline", "", "write the current findings to the baseline `file` and exit 0")
	fixDryRun := flag.Bool("fix-dryrun", false, "list auto-fixable findings with the fix each would get; always exits 0")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [flags] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Lints the module against the simulator's contracts: determinism,\nconcurrency, nil-guards, tick units, shard affinity, AttrSink bracket\npairing, and zone-state/registry exhaustiveness. Defaults to ./... when\nno package pattern is given.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *rules {
		for _, r := range lint.Rules() {
			fmt.Printf("%-12s %s\n", r.Name, r.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadModule(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}
	if *affinity {
		fmt.Print(lint.AffinityReport(pkgs))
		return
	}
	findings := lint.Check(pkgs)
	cwd, _ := os.Getwd()

	if *fixDryRun {
		for _, line := range lint.FixDryRun(findings, cwd) {
			fmt.Println(line)
		}
		return
	}
	if *writeBaseline != "" {
		doc := lint.EncodeJSON(lint.ToJSONFindings(findings, cwd))
		if err := os.WriteFile(*writeBaseline, doc, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "simlint: wrote %d finding(s) to %s\n", len(findings), *writeBaseline)
		return
	}
	if *baseline != "" {
		base, err := lint.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			os.Exit(2)
		}
		fresh, stale := lint.DiffBaseline(lint.ToJSONFindings(findings, cwd), base)
		for _, f := range fresh {
			fmt.Printf("%s:%d: [%s] %s\n", f.File, f.Line, f.Rule, f.Msg)
		}
		for _, f := range stale {
			fmt.Printf("%s: [stale-baseline] no longer produced: [%s] %s\n", f.File, f.Rule, f.Msg)
		}
		if len(fresh) > 0 || len(stale) > 0 {
			fmt.Fprintf(os.Stderr, "simlint: %d new finding(s), %d stale baseline entr(ies); regenerate with -write-baseline %s and review the diff\n",
				len(fresh), len(stale), *baseline)
			os.Exit(1)
		}
		return
	}
	if *jsonOut {
		os.Stdout.Write(lint.EncodeJSON(lint.ToJSONFindings(findings, cwd)))
		if len(findings) > 0 {
			os.Exit(1)
		}
		return
	}
	for _, f := range findings {
		name := f.Pos.Filename
		if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Printf("%s:%d: [%s] %s\n", name, f.Pos.Line, f.Rule, f.Msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}
