// Command simlint runs the project's static-analysis suite over the module:
// the determinism, concurrency, nil-guard, and tick-unit contracts that keep
// every simulation bit-identical across runs and every disabled instrument a
// zero-alloc no-op. See docs/static-analysis.md for the rule set and the
// //simlint:allow escape hatch.
//
// Usage:
//
//	go run ./cmd/simlint ./...
//
// Exit status is 0 when the module is clean, 1 when there are findings, and
// 2 when packages fail to load or type-check.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"blockhead/internal/lint"
)

func main() {
	rules := flag.Bool("rules", false, "print the rule set and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [-rules] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Lints the module against the simulator's determinism, concurrency,\nnil-guard, and tick-unit contracts. Defaults to ./... when no package\npattern is given.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *rules {
		for _, r := range lint.Rules() {
			fmt.Printf("%-12s %s\n", r.Name, r.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadModule(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}
	findings := lint.Check(pkgs)
	cwd, _ := os.Getwd()
	for _, f := range findings {
		name := f.Pos.Filename
		if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Printf("%s:%d: [%s] %s\n", name, f.Pos.Line, f.Rule, f.Msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}
