// Command surveytab regenerates the paper's Table 1 from the survey corpus
// and optionally lists the corpus entries.
//
// Usage:
//
//	surveytab            # print Table 1 and the headline shares
//	surveytab -corpus    # also list all 104 classified entries
package main

import (
	"flag"
	"fmt"

	"blockhead/internal/survey"
)

func main() {
	corpus := flag.Bool("corpus", false, "list the classified corpus entries")
	flag.Parse()

	tbl := survey.Table1()
	fmt.Print(tbl.Format())
	s, a, o := tbl.Shares()
	fmt.Printf("\nclassified: %d of %d; simplified/solved %.0f%%, affected %.0f%%, orthogonal %.0f%%\n",
		tbl.Classified(), tbl.Total.Pubs, s*100, a*100, o*100)

	if *corpus {
		fmt.Println()
		for _, p := range survey.Corpus() {
			tag := "cited"
			if p.Synthetic {
				tag = "synthetic"
			}
			fmt.Printf("%-9s %-4s %d %-5s %s\n", tag, p.Venue, p.Year, p.Cat, p.Title)
		}
	}
}
