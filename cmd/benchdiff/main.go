// Command benchdiff compares two blockhead/bench/v1 JSON files (the
// machine-readable output of `znsbench -bench-json`, committed as
// BENCH_*.json) and reports per-metric deltas. It exits non-zero when any
// metric regresses beyond the threshold, so `make bench-compare` can gate a
// change on the committed baseline.
//
// Usage:
//
//	benchdiff [-threshold 0.10] [-force] baseline.json new.json
//
// Throughput (write_pages_per_sec) counts as regressed when it drops;
// latencies and write amplification count as regressed when they rise.
// The critical-path what-if ratios count as regressed when they drift in
// either direction — a prediction is pinned, not minimized — which is how
// `make bench-compare` gates the what-if engine at 0.1% on
// BENCH_critpath.json. The exemplar columns (exem_*) are pinned the same
// way against BENCH_exemplars.json: the worst-IO set is a deterministic
// function of the seeded run.
// Metrics absent from the baseline (zero) are skipped. Entries present in
// only one file are never silently dropped: added entries are listed so
// they can be folded into the baseline, and entries missing from the new
// file fail the comparison (lost coverage is a regression too). Comparing
// a quick run against a full run is refused unless -force is given: their
// numbers measure different regimes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"blockhead/internal/core"
	"blockhead/internal/telemetry/critpath"
	"blockhead/internal/telemetry/exemplar"
)

const schema = "blockhead/bench/v1"

type benchFile struct {
	Schema  string            `json:"schema"`
	Seed    int64             `json:"seed"`
	Quick   bool              `json:"quick"`
	Entries []core.BenchEntry `json:"entries"`
}

// metric is one compared column of a BenchEntry. symmetric metrics (the
// what-if prediction ratios) regress when they drift in either direction:
// a prediction is pinned, not minimized.
type metric struct {
	name         string
	higherBetter bool
	symmetric    bool
	get          func(e core.BenchEntry) float64
}

var metrics = []metric{
	{name: "write_pages_per_sec", higherBetter: true, get: func(e core.BenchEntry) float64 { return e.WritePPS }},
	{name: "write_amp", get: func(e core.BenchEntry) float64 { return e.WriteAmp }},
	{name: "read_mean_us", get: func(e core.BenchEntry) float64 { return e.ReadMeanUs }},
	{name: "read_p50_us", get: func(e core.BenchEntry) float64 { return e.ReadP50Us }},
	{name: "read_p90_us", get: func(e core.BenchEntry) float64 { return e.ReadP90Us }},
	{name: "read_p99_us", get: func(e core.BenchEntry) float64 { return e.ReadP99Us }},
	{name: "read_p999_us", get: func(e core.BenchEntry) float64 { return e.ReadP999Us }},
	{name: "write_p99_us", get: func(e core.BenchEntry) float64 { return e.WriteP99Us }},
	{name: "crit_top_path_frac", symmetric: true, get: func(e core.BenchEntry) float64 {
		if e.CritPath == nil {
			return 0
		}
		return e.CritPath.TopPathFrac
	}},
	// The exemplar columns are pinned (symmetric): the worst-IO set is a
	// deterministic function of the seeded run, so any drift — faster OR
	// slower — means the capture layer or the simulation changed.
	{name: "exem_ios", symmetric: true, get: exemCol(func(b exemplar.BenchSummary) float64 { return float64(b.IOs) })},
	{name: "exem_captured", symmetric: true, get: exemCol(func(b exemplar.BenchSummary) float64 { return float64(b.Captured) })},
	{name: "exem_flagged", symmetric: true, get: exemCol(func(b exemplar.BenchSummary) float64 { return float64(b.Flagged) })},
	{name: "exem_worst_read_us", symmetric: true, get: exemCol(func(b exemplar.BenchSummary) float64 { return b.WorstReadUs })},
	{name: "exem_worst_write_us", symmetric: true, get: exemCol(func(b exemplar.BenchSummary) float64 { return b.WorstWriteUs })},
	{name: "exem_sum_top_us", symmetric: true, get: exemCol(func(b exemplar.BenchSummary) float64 { return b.SumTopUs })},
}

// exemCol pulls one exemplar bench column (0 when the entry predates
// exemplar capture, so old baselines compare as "no baseline").
func exemCol(get func(exemplar.BenchSummary) float64) func(core.BenchEntry) float64 {
	return func(e core.BenchEntry) float64 {
		if e.Exemplars == nil {
			return 0
		}
		return get(*e.Exemplars)
	}
}

// critRatio pulls one canonical what-if ratio column out of the critpath
// bench block (0 when the entry predates critpath recording, so old
// baselines compare as "no baseline" instead of failing).
func critRatio(scenario string, col func(critpath.WhatIfBench) float64) func(core.BenchEntry) float64 {
	return func(e core.BenchEntry) float64 {
		if e.CritPath == nil {
			return 0
		}
		return e.CritPath.WhatIfRatio(scenario, col)
	}
}

func init() {
	for _, sc := range critpath.Canonical() {
		for _, col := range []struct {
			name string
			get  func(critpath.WhatIfBench) float64
		}{
			{"read_mean_ratio", func(w critpath.WhatIfBench) float64 { return w.ReadMeanRatio }},
			{"read_p99_ratio", func(w critpath.WhatIfBench) float64 { return w.ReadP99Ratio }},
			{"write_mean_ratio", func(w critpath.WhatIfBench) float64 { return w.WriteMeanRatio }},
			{"write_p99_ratio", func(w critpath.WhatIfBench) float64 { return w.WriteP99Ratio }},
		} {
			metrics = append(metrics, metric{
				name:      "whatif[" + sc.Name + "]." + col.name,
				symmetric: true,
				get:       critRatio(sc.Name, col.get),
			})
		}
	}
}

func main() {
	var (
		threshold = flag.Float64("threshold", 0.10, "relative regression beyond which benchdiff fails (0.10 = 10%)")
		force     = flag.Bool("force", false, "compare even when one file is a quick run and the other is not")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.10] [-force] baseline.json new.json")
		os.Exit(2)
	}
	old, err := load(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	new_, err := load(flag.Arg(1))
	if err != nil {
		fail(err)
	}
	if old.Quick != new_.Quick && !*force {
		fail(fmt.Errorf("quick mismatch: %s quick=%v, %s quick=%v (pass -force to compare anyway)",
			flag.Arg(0), old.Quick, flag.Arg(1), new_.Quick))
	}
	if old.Seed != new_.Seed {
		fmt.Fprintf(os.Stderr, "benchdiff: note: seeds differ (%d vs %d); deltas include workload noise\n",
			old.Seed, new_.Seed)
	}

	key := func(e core.BenchEntry) string { return e.Experiment + "/" + e.Name }
	baseline := make(map[string]core.BenchEntry, len(old.Entries))
	for _, e := range old.Entries {
		baseline[key(e)] = e
	}

	regressions := 0
	matched := 0
	var added []string
	for _, ne := range new_.Entries {
		oe, ok := baseline[key(ne)]
		if !ok {
			added = append(added, key(ne))
			continue
		}
		matched++
		delete(baseline, key(ne))
		fmt.Printf("%s\n", key(ne))
		for _, m := range metrics {
			ov, nv := m.get(oe), m.get(ne)
			if ov == 0 && nv == 0 {
				continue
			}
			if ov == 0 {
				fmt.Printf("  %-20s %12s -> %12.2f   (no baseline)\n", m.name, "-", nv)
				continue
			}
			delta := (nv - ov) / ov
			verdict := ""
			bad := delta > *threshold
			if m.higherBetter {
				bad = delta < -*threshold
			}
			if m.symmetric {
				bad = delta > *threshold || delta < -*threshold
			}
			if bad {
				verdict = fmt.Sprintf("  REGRESSION (>%.0f%%)", *threshold*100)
				regressions++
			}
			fmt.Printf("  %-20s %12.2f -> %12.2f   %+6.1f%%%s\n", m.name, ov, nv, delta*100, verdict)
		}
	}
	// Keys present in only one file are reported explicitly, never
	// silently dropped. Added keys are informational (a new experiment
	// has no baseline yet); removed keys fail the run, because a
	// benchmark that stopped being produced is lost coverage.
	var removed []string
	for k := range baseline {
		removed = append(removed, k)
	}
	sort.Strings(added)
	sort.Strings(removed)
	for _, k := range added {
		fmt.Printf("%s: added (in %s only; fold into the baseline)\n", k, flag.Arg(1))
	}
	for _, k := range removed {
		fmt.Printf("%s: removed (in %s but missing from %s)\n", k, flag.Arg(0), flag.Arg(1))
	}
	if matched == 0 {
		fail(fmt.Errorf("no entries in common between %s and %s", flag.Arg(0), flag.Arg(1)))
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d metric(s) regressed beyond %.0f%%\n", regressions, *threshold*100)
		os.Exit(1)
	}
	if len(removed) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d baseline entr%s missing from %s\n",
			len(removed), plural(len(removed), "y", "ies"), flag.Arg(1))
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d entries compared, no regression beyond %.0f%%", matched, *threshold*100)
	if len(added) > 0 {
		fmt.Printf(" (%d new entr%s not in baseline)", len(added), plural(len(added), "y", "ies"))
	}
	fmt.Println()
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

func load(path string) (benchFile, error) {
	var f benchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != schema {
		return f, fmt.Errorf("%s: schema %q, want %q", path, f.Schema, schema)
	}
	return f, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}
