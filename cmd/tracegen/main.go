// Command tracegen generates synthetic block-level I/O traces and replays
// them against the simulated devices — the tooling for §4.2's question "can
// we systematically test representative and synthetic workloads to discover
// if any perform worse over ZNS?"
//
// Usage:
//
//	tracegen -out w.ztrc -ops 50000 -workload zipf       # record
//	tracegen -replay w.ztrc -device conv                 # replay on a conventional SSD
//	tracegen -replay w.ztrc -device zns                  # replay on block-on-ZNS
//	tracegen -ops 20000 -device both                     # generate in memory, compare
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"blockhead/internal/flash"
	"blockhead/internal/ftl"
	"blockhead/internal/hostftl"
	"blockhead/internal/sim"
	"blockhead/internal/trace"
	"blockhead/internal/workload"
	"blockhead/internal/zns"
)

const logicalPages = 12000

func main() {
	var (
		out    = flag.String("out", "", "write the generated trace to this file")
		replay = flag.String("replay", "", "replay this trace file instead of generating")
		ops    = flag.Int("ops", 20000, "operations to generate")
		wl     = flag.String("workload", "uniform", "uniform | zipf | seq")
		reads  = flag.Float64("reads", 0.3, "fraction of reads")
		device = flag.String("device", "both", "conv | zns | both")
		seed   = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	var traceBytes []byte
	if *replay != "" {
		data, err := os.ReadFile(*replay)
		if err != nil {
			fatal(err)
		}
		traceBytes = data
	} else {
		var buf bytes.Buffer
		if err := generate(&buf, *ops, *wl, *reads, *seed); err != nil {
			fatal(err)
		}
		traceBytes = buf.Bytes()
		if *out != "" {
			if err := os.WriteFile(*out, traceBytes, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %d ops (%d bytes) to %s\n", *ops, len(traceBytes), *out)
			return
		}
	}

	if *device == "conv" || *device == "both" {
		if err := replayConv(bytes.NewReader(traceBytes)); err != nil {
			fatal(err)
		}
	}
	if *device == "zns" || *device == "both" {
		if err := replayZNS(bytes.NewReader(traceBytes)); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}

func generate(w io.Writer, ops int, wl string, readFrac float64, seed int64) error {
	src := workload.NewSource(seed)
	var keys workload.KeyGen
	switch wl {
	case "zipf":
		keys = workload.NewZipf(src, logicalPages, 0.99)
	case "seq":
		keys = workload.NewSequential(logicalPages)
	case "uniform":
		keys = workload.NewUniform(src, logicalPages)
	default:
		return fmt.Errorf("unknown workload %q", wl)
	}
	tw := trace.NewWriter(w)
	arrivals := workload.NewPoisson(src, 5000)
	var at sim.Time
	for i := 0; i < ops; i++ {
		at = arrivals.Next(at)
		kind := trace.OpWrite
		if src.Float64() < readFrac {
			kind = trace.OpRead
		}
		if err := tw.Append(trace.Record{At: at, Kind: kind, LBA: keys.Next(), Pages: 1}); err != nil {
			return err
		}
	}
	return tw.Flush()
}

func geometry() flash.Geometry {
	return flash.Geometry{Channels: 4, DiesPerChan: 1, PlanesPerDie: 1,
		BlocksPerLUN: 64, PagesPerBlock: 64, PageSize: 4096}
}

func replayConv(r io.Reader) error {
	dev, err := ftl.NewDefault(geometry(), flash.LatenciesFor(flash.TLC), 0.11)
	if err != nil {
		return err
	}
	written := make(map[int64]bool)
	var last sim.Time
	n, err := trace.Replay(trace.NewReader(r), func(rec trace.Record) error {
		at := sim.Max(rec.At, 0)
		switch rec.Kind {
		case trace.OpWrite:
			done, err := dev.WritePage(at, rec.LBA%dev.CapacityPages(), nil)
			written[rec.LBA%dev.CapacityPages()] = true
			last = sim.Max(last, done)
			return err
		case trace.OpRead:
			lpn := rec.LBA % dev.CapacityPages()
			if !written[lpn] {
				return nil
			}
			done, _, err := dev.ReadPage(at, lpn)
			last = sim.Max(last, done)
			return err
		case trace.OpTrim:
			return dev.Trim(at, rec.LBA%dev.CapacityPages(), 1)
		default:
			return nil
		}
	})
	if err != nil {
		return err
	}
	c := dev.Counters()
	fmt.Printf("conventional: %6d ops, finished at %8.1f ms, WA %.2f, GC runs %d\n",
		n, last.Millis(), c.WriteAmp(), dev.GCRuns())
	return nil
}

func replayZNS(r io.Reader) error {
	dev, err := zns.New(zns.Config{Geom: geometry(), Lat: flash.LatenciesFor(flash.TLC),
		ZoneBlocks: 1})
	if err != nil {
		return err
	}
	f, err := hostftl.New(dev, hostftl.Config{
		OPFraction: 0.11, ZonesPerStream: 4, UseSimpleCopy: true,
		GCMode: hostftl.GCIncremental,
	})
	if err != nil {
		return err
	}
	written := make(map[int64]bool)
	var last sim.Time
	n, err := trace.Replay(trace.NewReader(r), func(rec trace.Record) error {
		at := sim.Max(rec.At, 0)
		switch rec.Kind {
		case trace.OpWrite:
			done, err := f.Write(at, rec.LBA%f.CapacityPages(), nil)
			written[rec.LBA%f.CapacityPages()] = true
			last = sim.Max(last, done)
			return err
		case trace.OpRead:
			lpn := rec.LBA % f.CapacityPages()
			if !written[lpn] {
				return nil
			}
			done, _, err := f.Read(at, lpn)
			last = sim.Max(last, done)
			return err
		case trace.OpTrim:
			return f.Trim(rec.LBA%f.CapacityPages(), 1)
		default:
			return nil
		}
	})
	if err != nil {
		return err
	}
	fmt.Printf("block-on-zns: %6d ops, finished at %8.1f ms, WA %.2f, zone resets %d\n",
		n, last.Millis(), f.WriteAmp(), f.GCResets())
	return nil
}
