// Command znsbench runs the paper-reproduction experiments (E1-E12 and the
// ablations) and prints their report tables.
//
// Usage:
//
//	znsbench                 # run everything, full size
//	znsbench -quick          # smaller sweeps, seconds instead of minutes
//	znsbench -run E2,E5      # selected experiments
//	znsbench -list           # list experiments and their paper claims
//	znsbench -seed 7         # change the workload seed
//	znsbench -shards 4       # parallel sim lanes; identical reports to -shards 1
//
// Telemetry (see docs/observability.md):
//
//	znsbench -run E2,E8 -trace-out out.json -metrics-out metrics.json
//	znsbench -run E2 -metrics-out m.json -sample-every 5ms
//	znsbench -run E4 -serve :8077        # live dashboard + JSON endpoints
//	znsbench -run E4,E6 -bench-json BENCH.json
//	znsbench -slo -run E14 -bench-json BENCH_slo.json  # per-tenant SLO run
//	znsbench -run E4 -whatif nand_program:0.5  # counterfactual ground truth
//	znsbench -explain E6:512          # per-IO forensic replay (tick-by-tick)
//	znsbench -cpuprofile cpu.pprof    # profile the simulator itself
//
// -trace-out writes Chrome trace-event JSON (open in chrome://tracing or
// https://ui.perfetto.dev) with one track per flash channel, LUN, and zone;
// -metrics-out writes counters, gauges, histograms, and the virtual-time
// series sampled every -sample-every of virtual time.
//
// -serve starts an HTTP server with /metrics.json, /attribution.json, an
// SSE /events stream, and a live dashboard at /; it publishes while the
// experiments run and keeps serving the final snapshots until interrupted.
// -bench-json writes the machine-readable results (throughput, latency
// percentiles, per-phase attribution) suitable for committing as
// BENCH_*.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"blockhead/internal/core"
	"blockhead/internal/fault"
	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
	"blockhead/internal/telemetry/critpath"
	"blockhead/internal/telemetry/httpserve"
)

func main() {
	var (
		runIDs      = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		quick       = flag.Bool("quick", false, "shrink sweeps and run lengths")
		list        = flag.Bool("list", false, "list experiments and exit")
		seed        = flag.Int64("seed", 42, "workload seed")
		metricsOut  = flag.String("metrics-out", "", "write metrics JSON (counters, gauges, time series) to this file")
		traceOut    = flag.String("trace-out", "", "write Chrome trace-event JSON to this file")
		traceText   = flag.String("trace-text", "", "write a plain-text event dump to this file")
		sampleEvery = flag.Duration("sample-every", 10*time.Millisecond, "virtual-time interval between time-series samples")
		traceCap    = flag.Int("trace-events", telemetry.DefaultTraceEvents, "trace ring capacity (older events are dropped)")
		cpuprofile  = flag.String("cpuprofile", "", "write a pprof CPU profile of the simulator to this file")
		serve       = flag.String("serve", "", "serve live telemetry over HTTP on this address (e.g. :8077)")
		benchJSON   = flag.String("bench-json", "", "write machine-readable benchmark results (BENCH_*.json schema) to this file")
		faults      = flag.String("faults", "", "fault profile for the fault-campaign experiment (E13); implies running E13")
		slo         = flag.Bool("slo", false, "run the per-tenant SLO experiment (E14); implies adding E14 to -run")
		whatif      = flag.String("whatif", "", "run under counterfactual phase scalings, e.g. nand_program:0.5 or zone_reset:0,wp_serial:0 — the ground truth the what-if engine predicts")
		explain     = flag.String("explain", "", "replay one measured IO with tick-by-tick forensics, e.g. E6:512 (experiment:sequence from a 'slowest IOs' report section); prints the annotated narrative and exits")
		shards      = flag.Int("shards", 1, "parallel sim lanes per experiment (1 = serial reference; reports are byte-identical at any count, see docs/parallel-sim.md); probe/explain runs force serial")
	)
	flag.Parse()

	if err := core.CheckRegistry(); err != nil {
		fmt.Fprintln(os.Stderr, "znsbench:", err)
		os.Exit(1)
	}

	if *list {
		for _, e := range core.All() {
			fmt.Printf("%-4s %s\n     paper: %s\n", e.ID, e.Title, e.PaperClaim)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "znsbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "znsbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "znsbench: -shards must be >= 1, got %d\n", *shards)
		os.Exit(2)
	}
	cfg := core.Config{Quick: *quick, Seed: *seed, FaultProfile: *faults, Shards: *shards}
	if *whatif != "" {
		sc, err := critpath.ParseScenario(*whatif)
		if err != nil {
			fmt.Fprintln(os.Stderr, "znsbench:", err)
			os.Exit(2)
		}
		cfg.Scenario = &sc
		fmt.Fprintf(os.Stderr, "znsbench: counterfactual run under %s\n", sc.Name)
	}
	if *faults != "" {
		if _, ok := fault.ProfileByName(*faults); !ok {
			fmt.Fprintf(os.Stderr, "znsbench: unknown fault profile %q (valid: %s)\n",
				*faults, strings.Join(fault.ProfileNames(), ", "))
			os.Exit(2)
		}
	}
	if *explain != "" {
		id, seq, err := parseExplain(*explain)
		if err != nil {
			fmt.Fprintln(os.Stderr, "znsbench:", err)
			os.Exit(2)
		}
		transcript, err := core.Explain(cfg, id, seq)
		if err != nil {
			fmt.Fprintln(os.Stderr, "znsbench:", err)
			os.Exit(1)
		}
		fmt.Print(transcript)
		return
	}
	if *metricsOut != "" || *traceOut != "" || *traceText != "" || *serve != "" {
		cfg.Probe = telemetry.NewProbe(telemetry.Options{
			SampleEvery: sim.Time((*sampleEvery).Nanoseconds()),
			TraceEvents: *traceCap,
		})
	}
	var server *httpserve.Server
	if *serve != "" {
		var err error
		server, err = httpserve.New(cfg.Probe, httpserve.Options{Addr: *serve})
		if err != nil {
			fmt.Fprintln(os.Stderr, "znsbench:", err)
			os.Exit(1)
		}
		cfg.Probe.Pub = server
		fmt.Fprintf(os.Stderr, "znsbench: serving live telemetry at %s/\n", server.URL())
	}

	var selected []core.Experiment
	if *runIDs == "" {
		selected = core.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, ok := core.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "znsbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
		if *faults != "" {
			// -faults exists to drive the fault campaign: make sure it runs
			// even when the -run list predates E13.
			hasE13 := false
			for _, e := range selected {
				hasE13 = hasE13 || e.ID == "E13"
			}
			if !hasE13 {
				e, _ := core.ByID("E13")
				selected = append(selected, e)
			}
		}
		if *slo {
			// -slo drives the per-tenant SLO experiment the same way.
			hasE14 := false
			for _, e := range selected {
				hasE14 = hasE14 || e.ID == "E14"
			}
			if !hasE14 {
				e, _ := core.ByID("E14")
				selected = append(selected, e)
			}
		}
	}
	var bench []core.BenchEntry
	for _, e := range selected {
		rep, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "znsbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(rep.Format())
		bench = append(bench, rep.Bench...)
	}

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, cfg, bench); err != nil {
			fmt.Fprintf(os.Stderr, "znsbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "znsbench: wrote %d benchmark entries to %s\n", len(bench), *benchJSON)
	}
	if cfg.Probe != nil {
		if err := exportTelemetry(cfg.Probe, *metricsOut, *traceOut, *traceText); err != nil {
			fmt.Fprintf(os.Stderr, "znsbench: %v\n", err)
			os.Exit(1)
		}
	}
	if server != nil {
		// Publish the end-of-run snapshots, then keep serving them so the
		// endpoints stay curl-able until the user is done.
		server.Publish(lastSampleTime(cfg.Probe.Metrics))
		fmt.Fprintf(os.Stderr, "znsbench: runs complete; still serving at %s/ (Ctrl-C to exit)\n", server.URL())
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
		server.Close()
	}
}

// parseExplain splits an -explain target "E6:512" into its experiment ID
// and measured-IO sequence number.
func parseExplain(spec string) (string, uint64, error) {
	id, seqStr, ok := strings.Cut(spec, ":")
	if !ok || id == "" || seqStr == "" {
		return "", 0, fmt.Errorf("explain: want <experiment>:<seq> (e.g. E6:512), got %q", spec)
	}
	seq, err := strconv.ParseUint(seqStr, 10, 64)
	if err != nil {
		return "", 0, fmt.Errorf("explain: bad sequence number %q: %v", seqStr, err)
	}
	return id, seq, nil
}

// benchFile is the -bench-json schema, committed as BENCH_*.json to track
// the performance trajectory across PRs.
type benchFile struct {
	Schema  string            `json:"schema"`
	Seed    int64             `json:"seed"`
	Quick   bool              `json:"quick"`
	Entries []core.BenchEntry `json:"entries"`
}

func writeBenchJSON(path string, cfg core.Config, entries []core.BenchEntry) error {
	if entries == nil {
		entries = []core.BenchEntry{}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(benchFile{
		Schema: "blockhead/bench/v1", Seed: cfg.Seed, Quick: cfg.Quick, Entries: entries,
	})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// exportTelemetry writes the requested telemetry outputs after the runs.
func exportTelemetry(p *telemetry.Probe, metricsOut, traceOut, traceText string) error {
	writeTo := func(path string, write func(w io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if metricsOut != "" {
		// Dump at the last sampled instant so final gauge polls line up with
		// the end of the sampled series.
		at := lastSampleTime(p.Metrics)
		if err := writeTo(metricsOut, func(w io.Writer) error {
			return p.Metrics.WriteJSON(w, at)
		}); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "znsbench: wrote metrics to %s\n", metricsOut)
	}
	if traceOut != "" {
		if err := writeTo(traceOut, p.Trace.WriteChromeTrace); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "znsbench: wrote %d trace events to %s (%d dropped)\n",
			p.Trace.Len(), traceOut, p.Trace.Dropped())
	}
	if traceText != "" {
		if err := writeTo(traceText, p.Trace.WriteText); err != nil {
			return err
		}
	}
	return nil
}

// lastSampleTime finds the latest sampled timestamp, or 0.
func lastSampleTime(r *telemetry.Registry) sim.Time {
	var last sim.Time
	for _, s := range r.SeriesSnapshot() {
		if n := len(s.Points); n > 0 && s.Points[n-1].At > last {
			last = s.Points[n-1].At
		}
	}
	return last
}
