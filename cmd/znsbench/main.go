// Command znsbench runs the paper-reproduction experiments (E1-E12 and the
// ablations) and prints their report tables.
//
// Usage:
//
//	znsbench                 # run everything, full size
//	znsbench -quick          # smaller sweeps, seconds instead of minutes
//	znsbench -run E2,E5      # selected experiments
//	znsbench -list           # list experiments and their paper claims
//	znsbench -seed 7         # change the workload seed
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"blockhead/internal/core"
)

func main() {
	var (
		runIDs = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		quick  = flag.Bool("quick", false, "shrink sweeps and run lengths")
		list   = flag.Bool("list", false, "list experiments and exit")
		seed   = flag.Int64("seed", 42, "workload seed")
	)
	flag.Parse()

	if *list {
		for _, e := range core.All() {
			fmt.Printf("%-4s %s\n     paper: %s\n", e.ID, e.Title, e.PaperClaim)
		}
		return
	}

	cfg := core.Config{Quick: *quick, Seed: *seed}
	var selected []core.Experiment
	if *runIDs == "" {
		selected = core.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, ok := core.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "znsbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}
	for _, e := range selected {
		rep, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "znsbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(rep.Format())
	}
}
