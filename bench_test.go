// Benchmarks regenerating every table and figure-grade claim in the paper,
// one per experiment (see DESIGN.md's per-experiment index). Each benchmark
// runs the experiment's workload and reports the paper's metric via
// b.ReportMetric, so `go test -bench=. -benchmem` reproduces the evaluation
// end to end.
//
// Absolute wall-clock numbers measure the simulator, not the storage
// devices; the reported custom metrics (WA, virtual-time latencies,
// speedups) are the reproduction targets.
package blockhead

import (
	"testing"

	"blockhead/internal/core"
	"blockhead/internal/flash"
	"blockhead/internal/sim"
	"blockhead/internal/survey"
)

func quick() core.Config { return core.Config{Quick: true, Seed: 42} }

// BenchmarkE1SurveyTable regenerates Table 1.
func BenchmarkE1SurveyTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := survey.Table1()
		if tbl.Classified() != 104 {
			b.Fatalf("classified = %d", tbl.Classified())
		}
	}
	s, a, o := survey.Table1().Shares()
	b.ReportMetric(s*100, "%simplified")
	b.ReportMetric(a*100, "%affected")
	b.ReportMetric(o*100, "%orthogonal")
}

// BenchmarkE2WriteAmpVsOP reproduces the §2.2 sweep; the paper's endpoints
// are ~15x at no OP and ~2.5x at 25%.
func BenchmarkE2WriteAmpVsOP(b *testing.B) {
	var wa0, wa25 float64
	for i := 0; i < b.N; i++ {
		var err error
		if wa0, _, err = core.E2Point(0, 2, 42); err != nil {
			b.Fatal(err)
		}
		if wa25, _, err = core.E2Point(0.25, 2, 42); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(wa0, "WA@0%OP")
	b.ReportMetric(wa25, "WA@25%OP")
}

// BenchmarkE3DRAMFootprint reproduces the mapping-DRAM estimates.
func BenchmarkE3DRAMFootprint(b *testing.B) {
	var rep core.Report
	for i := 0; i < b.N; i++ {
		e, _ := core.ByID("E3")
		var err error
		if rep, err = e.Run(quick()); err != nil {
			b.Fatal(err)
		}
	}
	_ = rep
	b.ReportMetric(4096, "x-reduction@1TB")
}

// BenchmarkE4ReadLatencyThroughput reproduces the WD comparison (§2.4):
// lower read latency and higher throughput on ZNS.
func BenchmarkE4ReadLatencyThroughput(b *testing.B) {
	var conv, z core.E4Result
	for i := 0; i < b.N; i++ {
		var err error
		if conv, err = core.E4Conventional(quick()); err != nil {
			b.Fatal(err)
		}
		if z, err = core.E4ZNS(quick()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(z.WritePagesPS/conv.WritePagesPS, "tput-ratio")
	b.ReportMetric((1-float64(z.ReadMean)/float64(conv.ReadMean))*100, "%read-mean-reduction")
	b.ReportMetric(float64(conv.ReadP99)/float64(z.ReadP99), "read-p99-ratio")
}

// BenchmarkE5LSMOnZNS reproduces the RocksDB claims (§2.4): WA 5x -> 1.2x,
// lower read tails, higher write throughput.
func BenchmarkE5LSMOnZNS(b *testing.B) {
	var conv, z core.E5Result
	for i := 0; i < b.N; i++ {
		cb, zb, err := core.E5Backends(quick())
		if err != nil {
			b.Fatal(err)
		}
		if conv, err = core.E5Run("conv", cb, quick()); err != nil {
			b.Fatal(err)
		}
		if z, err = core.E5Run("zns", zb, quick()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(conv.DeviceWA, "conv-WA")
	b.ReportMetric(z.DeviceWA, "zns-WA")
	b.ReportMetric(z.WriteBytesPS/conv.WriteBytesPS, "tput-ratio")
	b.ReportMetric(float64(conv.ReadP999)/float64(z.ReadP999), "read-p999-ratio")
}

// BenchmarkE6HostScheduledGC reproduces the IBM SALSA claims (§2.4).
func BenchmarkE6HostScheduledGC(b *testing.B) {
	var conv, host core.E6Result
	for i := 0; i < b.N; i++ {
		var err error
		if conv, err = core.E6Conventional(quick()); err != nil {
			b.Fatal(err)
		}
		if host, err = core.E6HostFTL(quick()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(conv.ReadP999)/float64(host.ReadP999), "tail-ratio")
	b.ReportMetric((host.WritePagesPS/conv.WritePagesPS-1)*100, "%tput-gain")
}

// BenchmarkE7ZoneAppend reproduces the §4.2 write-pointer contention
// figure: appends scale with zone parallelism, locked writes do not.
func BenchmarkE7ZoneAppend(b *testing.B) {
	var w16, a16 float64
	for i := 0; i < b.N; i++ {
		var err error
		if w16, err = core.E7Throughput(16, false, 500*sim.Millisecond); err != nil {
			b.Fatal(err)
		}
		if a16, err = core.E7Throughput(16, true, 500*sim.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(a16/w16, "append-speedup@16writers")
}

// BenchmarkE8ActiveZones reproduces the §4.2 active-zone multiplexing
// comparison.
func BenchmarkE8ActiveZones(b *testing.B) {
	var static, dynamic core.E8Result
	for i := 0; i < b.N; i++ {
		var err error
		if static, err = core.E8Run(core.StaticZones, quick()); err != nil {
			b.Fatal(err)
		}
		if dynamic, err = core.E8Run(core.DynamicZones, quick()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(static.BurstP50)/float64(dynamic.BurstP50), "burst-p50-speedup")
	b.ReportMetric(dynamic.PagesPerSS/static.PagesPerSS, "tput-ratio")
}

// BenchmarkE9LifetimePlacement reproduces the §4.1 placement study.
func BenchmarkE9LifetimePlacement(b *testing.B) {
	e, _ := core.ByID("E9")
	var rep core.Report
	for i := 0; i < b.N; i++ {
		var err error
		if rep, err = e.Run(quick()); err != nil {
			b.Fatal(err)
		}
	}
	_ = rep
}

// BenchmarkE10SimpleCopy reproduces the §2.3 simple-copy claim.
func BenchmarkE10SimpleCopy(b *testing.B) {
	var hostCopy, sc core.E10Result
	for i := 0; i < b.N; i++ {
		var err error
		if hostCopy, err = core.E10HostFTL(false, quick()); err != nil {
			b.Fatal(err)
		}
		if sc, err = core.E10HostFTL(true, quick()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric((1-sc.PCIePerHostKB/hostCopy.PCIePerHostKB)*100, "%PCIe-saved")
}

// BenchmarkE11CostModel reproduces the §2.2 cost comparison.
func BenchmarkE11CostModel(b *testing.B) {
	e, _ := core.ByID("E11")
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(quick()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12FlashModel verifies the flash-layer calibration (§2.1).
func BenchmarkE12FlashModel(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = core.E12EraseProgramRatio(flash.TLC)
	}
	b.ReportMetric(ratio, "TLC-erase/program")
}

// BenchmarkX1Endurance runs the extension experiment: host pages written
// before wear-out on identical endurance-limited flash.
func BenchmarkX1Endurance(b *testing.B) {
	var conv, z uint64
	for i := 0; i < b.N; i++ {
		var err error
		if conv, err = core.X1Conventional(quick()); err != nil {
			b.Fatal(err)
		}
		if z, err = core.X1ZNS(quick()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(z)/float64(conv), "lifetime-ratio")
}

// benchExperiment runs a registered experiment end to end.
func benchExperiment(b *testing.B, id string) {
	e, ok := core.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(quick()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkX2MultiStream reproduces the §2.3 multi-stream comparison.
func BenchmarkX2MultiStream(b *testing.B) { benchExperiment(b, "X2") }

// BenchmarkX3RegressionSweep runs the §4.2 workload regression search.
func BenchmarkX3RegressionSweep(b *testing.B) { benchExperiment(b, "X3") }

// BenchmarkX4InterfaceTiers runs the §2.3/§4.1 interface-tier comparison.
func BenchmarkX4InterfaceTiers(b *testing.B) { benchExperiment(b, "X4") }

// BenchmarkX5Offload measures the host-FTL work and prices the §4.2
// host-vs-SoC decision.
func BenchmarkX5Offload(b *testing.B) { benchExperiment(b, "X5") }

// BenchmarkX6CacheDRAM runs the §4.1 cache DRAM-reclamation comparison.
func BenchmarkX6CacheDRAM(b *testing.B) { benchExperiment(b, "X6") }

// BenchmarkAblations runs A1-A4 (the DESIGN.md design-decision checks).
func BenchmarkAblations(b *testing.B) {
	for _, id := range []string{"A1", "A2", "A3", "A4"} {
		id := id
		b.Run(id, func(b *testing.B) { benchExperiment(b, id) })
	}
}
