module blockhead

go 1.22
