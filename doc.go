// Package blockhead is a from-scratch reproduction of "Don't Be a
// Blockhead: Zoned Namespaces Make Work on Conventional SSDs Obsolete"
// (HotOS '21): a NAND flash simulator, a conventional page-mapped FTL, a
// ZNS device model, and the host-side stacks (block translation layer,
// LSM key-value store, flash cache, zones-as-files) needed to regenerate
// every table, figure, and quantitative claim in the paper.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for
// paper-vs-measured results, and cmd/znsbench to run the experiments.
package blockhead
